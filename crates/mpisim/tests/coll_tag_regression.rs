//! Regression: collective tags are namespaced by op kind, with one
//! sequence counter per op.
//!
//! With the old single per-rank counter, ranks that ran a *different
//! number* of collectives on disjoint subgroups disagreed on the global
//! sequence number when they later met in a world collective: the two
//! halves minted different tags for the same allreduce and deadlocked.
//! Per-op counters make ranks agree on any op's sequence number no
//! matter what mix of *other* ops their subgroups ran.

use desim::SimTime;
use mpisim::{MpiImpl, MpiJob, RankCtx};
use netsim::{grid5000_pair, KernelConfig, Network, NodeId};

fn grid(nodes_per_site: usize) -> (Network, Vec<NodeId>) {
    let (mut topo, rn, nn) = grid5000_pair(nodes_per_site);
    topo.set_kernel_all(KernelConfig::tuned(4 << 20));
    let mut placement = rn;
    placement.extend(nn);
    (Network::new(topo), placement)
}

#[test]
fn disjoint_subgroups_with_different_op_mixes_can_rejoin_world_collectives() {
    let (net, placement) = grid(2);
    // A 5-second deadline turns a reintroduced tag collision into a fast
    // TimeLimitExceeded failure instead of a hung test.
    let report = MpiJob::new(net, placement, MpiImpl::Mpich2)
        .with_deadline(SimTime::from_nanos(5_000_000_000))
        .run(|mut ctx: RankCtx| async move {
            let comm = ctx.comm_split(|r| (r / 2) as u64); // {0,1} | {2,3}
            if ctx.rank() < 2 {
                // Two collectives on this subgroup...
                ctx.comm_barrier(&comm).await;
                ctx.comm_reduce(&comm, 0, 1024).await;
            } else {
                // ...only one on the other: the old global counter now
                // disagrees across the halves.
                ctx.comm_bcast(&comm, 0, 1024).await;
            }
            // Everyone meets in a world allreduce. Per-op counters: every
            // rank is at allreduce seq 1. Global counter: 3 vs 2 — the
            // butterfly partners wait on tags that never match.
            ctx.allreduce(2048).await;
        })
        .expect("world allreduce completes after skewed subgroup histories");
    assert!(report.clean, "undrained messages after the allreduce");
    assert_eq!(
        report.stats.collective_calls[&("allreduce".into(), 2048)],
        4
    );
}

#[test]
fn overlapping_different_ops_on_disjoint_subgroups_complete() {
    // Both halves run the *same number* of collectives but different ops
    // concurrently, then cross-check with a world barrier and a second
    // round with the roles swapped.
    let (net, placement) = grid(2);
    let report = MpiJob::new(net, placement, MpiImpl::Mpich2)
        .with_deadline(SimTime::from_nanos(5_000_000_000))
        .run(|mut ctx: RankCtx| async move {
            let comm = ctx.comm_split(|r| (r / 2) as u64);
            if ctx.rank() < 2 {
                ctx.comm_reduce(&comm, 0, 4096).await;
                ctx.comm_allgather(&comm, 512).await;
            } else {
                ctx.comm_allgather(&comm, 512).await;
                ctx.comm_reduce(&comm, 0, 4096).await;
            }
            ctx.barrier().await;
            ctx.allreduce(1024).await;
        })
        .expect("mixed-op subgroup phase completes");
    assert!(report.clean);
    assert_eq!(
        report.stats.collective_calls[&("comm_reduce".into(), 4096)],
        4
    );
}
