//! Property: every selectable collective algorithm is semantically
//! equivalent — same logical bytes moved, same completion behaviour —
//! across random (ranks, sizes, topology) draws. Only elapsed virtual
//! time may differ between algorithms.

use desim::prop::{forall, Rng};
use desim::SimTime;
use mpisim::{CollAlgo, CollConfig, CollOp, CollSel, ExecConfig, MpiImpl, MpiJob, RunReport};
use netsim::{grid5000_four_sites, grid5000_pair, KernelConfig, Network, NodeId};

/// A rebuildable network draw: the same `Case` always yields the same
/// topology + placement, so every algorithm run sees identical conditions.
#[derive(Clone, Copy, Debug)]
struct Case {
    ranks: usize,
    bytes: u64,
    /// 0 = single-site LAN, 1 = two-site split, 2 = four sites round-robin.
    topo: u8,
    /// Rennes-side rank count for the two-site split.
    split: usize,
}

impl Case {
    fn draw(rng: &mut Rng) -> Case {
        let ranks = rng.range_usize(4, 11);
        Case {
            ranks,
            bytes: rng.range_u64(1 << 10, 256 << 10),
            topo: rng.range_u64(0, 3) as u8,
            split: rng.range_usize(1, ranks),
        }
    }

    fn build(&self) -> (Network, Vec<NodeId>) {
        match self.topo {
            0 => {
                let (mut topo, rn, _nn) = grid5000_pair(self.ranks);
                topo.set_kernel_all(KernelConfig::tuned(4 << 20));
                (Network::new(topo), rn)
            }
            1 => {
                let (mut topo, rn, nn) = grid5000_pair(self.ranks);
                topo.set_kernel_all(KernelConfig::tuned(4 << 20));
                let mut placement: Vec<NodeId> = rn[..self.split].to_vec();
                placement.extend_from_slice(&nn[..self.ranks - self.split]);
                (Network::new(topo), placement)
            }
            _ => {
                let per_site = self.ranks.div_ceil(4);
                let (mut topo, _sites, nodes) = grid5000_four_sites(per_site);
                topo.set_kernel_all(KernelConfig::tuned(4 << 20));
                let placement: Vec<NodeId> = (0..self.ranks).map(|r| nodes[r % 4][r / 4]).collect();
                (Network::new(topo), placement)
            }
        }
    }

    fn run(&self, op: CollOp, sel: CollSel) -> RunReport {
        let (net, placement) = self.build();
        let bytes = self.bytes;
        let exec = ExecConfig::new().coll(CollConfig::new().pin_all(op, sel));
        MpiJob::new(net, placement, MpiImpl::Mpich2)
            .with_exec(exec)
            .with_deadline(SimTime::from_nanos(30_000_000_000))
            .run(move |mut ctx: mpisim::RankCtx| async move {
                match op {
                    CollOp::Bcast => ctx.bcast(0, bytes).await,
                    CollOp::Reduce => ctx.reduce(0, bytes).await,
                    _ => ctx.allreduce(bytes).await,
                }
            })
            .unwrap_or_else(|e| {
                panic!(
                    "{op:?} with {} deadlocked: {e:?} ({self:?})",
                    sel.algo.name()
                )
            })
    }
}

/// Total wire bytes arriving at `rank` from anywhere.
fn inbound(report: &RunReport, rank: usize) -> u64 {
    report
        .stats
        .pair_bytes
        .iter()
        .filter(|((_, dst), _)| *dst == rank)
        .map(|(_, b)| *b)
        .sum()
}

fn check_run(case: &Case, op: CollOp, sel: CollSel, baseline: &RunReport) -> RunReport {
    let report = case.run(op, sel);
    let tag = format!(
        "{op:?}/{}{}",
        sel.algo.name(),
        if sel.two_level { "+2lvl" } else { "" }
    );
    assert!(report.clean, "{tag}: undrained messages ({case:?})");
    assert_eq!(
        report.per_rank.len(),
        case.ranks,
        "{tag}: rank count ({case:?})"
    );
    assert_eq!(
        report.stats.collective_calls, baseline.stats.collective_calls,
        "{tag}: logical collective calls differ from baseline ({case:?})"
    );
    // Payload lower bounds: chunked algorithms may round chunk sizes, so
    // allow a few bytes of slack per rank of fan-out.
    let slack = 4 * case.ranks as u64;
    match op {
        CollOp::Bcast => {
            for r in 1..case.ranks {
                assert!(
                    inbound(&report, r) + slack >= case.bytes,
                    "{tag}: rank {r} received {} < {} payload ({case:?})",
                    inbound(&report, r),
                    case.bytes
                );
            }
        }
        CollOp::Reduce => {
            assert!(
                inbound(&report, 0) + slack >= case.bytes,
                "{tag}: root received {} < {} payload ({case:?})",
                inbound(&report, 0),
                case.bytes
            );
        }
        _ => {
            for r in 0..case.ranks {
                assert!(
                    inbound(&report, r) + slack >= case.bytes / 2,
                    "{tag}: rank {r} received {} < {} half-payload ({case:?})",
                    inbound(&report, r),
                    case.bytes / 2
                );
            }
        }
    }
    report
}

const BCAST_ALGOS: [CollAlgo; 7] = [
    CollAlgo::Linear,
    CollAlgo::Chain,
    CollAlgo::Pipeline,
    CollAlgo::Binary,
    CollAlgo::InOrderBinary,
    CollAlgo::Binomial,
    CollAlgo::ScatterAllgather,
];

const REDUCE_ALGOS: [CollAlgo; 6] = [
    CollAlgo::Linear,
    CollAlgo::Chain,
    CollAlgo::Pipeline,
    CollAlgo::Binary,
    CollAlgo::InOrderBinary,
    CollAlgo::Binomial,
];

const ALLREDUCE_ALGOS: [CollAlgo; 4] = [
    CollAlgo::Ring,
    CollAlgo::RecursiveDoubling,
    CollAlgo::Rabenseifner,
    CollAlgo::Binomial,
];

#[test]
fn every_bcast_algorithm_moves_the_same_logical_bytes() {
    forall(4, 0xB04D, |rng| {
        let case = Case::draw(rng);
        let baseline = case.run(CollOp::Bcast, CollSel::flat(CollAlgo::Binomial));
        for algo in BCAST_ALGOS {
            check_run(&case, CollOp::Bcast, CollSel::flat(algo), &baseline);
        }
        check_run(
            &case,
            CollOp::Bcast,
            CollSel::two_level(CollAlgo::Binomial),
            &baseline,
        );
    });
}

#[test]
fn every_reduce_algorithm_moves_the_same_logical_bytes() {
    forall(4, 0x4ED0, |rng| {
        let case = Case::draw(rng);
        let baseline = case.run(CollOp::Reduce, CollSel::flat(CollAlgo::Binomial));
        for algo in REDUCE_ALGOS {
            check_run(&case, CollOp::Reduce, CollSel::flat(algo), &baseline);
        }
        check_run(
            &case,
            CollOp::Reduce,
            CollSel::two_level(CollAlgo::Binomial),
            &baseline,
        );
    });
}

#[test]
fn every_allreduce_algorithm_moves_the_same_logical_bytes() {
    forall(4, 0xA11E, |rng| {
        let case = Case::draw(rng);
        let baseline = case.run(CollOp::Allreduce, CollSel::flat(CollAlgo::Ring));
        for algo in ALLREDUCE_ALGOS {
            check_run(&case, CollOp::Allreduce, CollSel::flat(algo), &baseline);
        }
        check_run(
            &case,
            CollOp::Allreduce,
            CollSel::two_level(CollAlgo::Ring),
            &baseline,
        );
    });
}
