//! Semantics of the fallible MPI API under injected rank failures:
//! timeouts fire when and only when armed, kills surface as typed errors
//! on both sides, and transient failures heal through the retry policy.

use desim::{SimDuration, SimTime};
use mpisim::{FaultPlan, FaultPolicy, MpiError, MpiImpl, MpiJob, RankCtx};
use netsim::{NodeParams, SiteParams, Topology};

const TAG: u64 = 7;

/// A one-site cluster of `n` nodes.
fn cluster(n: usize) -> (netsim::Network, Vec<netsim::NodeId>) {
    let mut t = Topology::new();
    let s = t.add_site("rennes", SiteParams::default());
    let nodes: Vec<_> = (0..n)
        .map(|_| t.add_node(s, NodeParams::default()))
        .collect();
    (netsim::Network::new(t), nodes)
}

#[test]
fn recv_timeout_fires_at_the_deadline() {
    let (net, nodes) = cluster(2);
    let timeout = SimDuration::from_millis(250);
    MpiJob::new(net, nodes, MpiImpl::Mpich2)
        .run(move |mut ctx: RankCtx| async move {
            if ctx.rank() == 0 {
                ctx.set_fault_policy(FaultPolicy {
                    recv_timeout: Some(timeout),
                    ..FaultPolicy::none()
                });
                let t0 = ctx.now();
                match ctx.try_recv(1, TAG).await {
                    Err(MpiError::Timeout { waited, .. }) => {
                        assert_eq!(waited, timeout);
                        assert_eq!(ctx.now().since(t0), timeout, "timeout fired off-schedule");
                    }
                    other => panic!("expected a timeout, got {other:?}"),
                }
            }
            // Rank 1 never sends.
        })
        .unwrap();
}

#[test]
fn successful_recv_is_undisturbed_by_an_armed_timeout() {
    // The cancellation timer loses the race and must find nothing to do.
    let (net, nodes) = cluster(2);
    let run = |policy: FaultPolicy| {
        let (net, nodes) = (net.clone(), nodes.clone());
        MpiJob::new(net, nodes, MpiImpl::Mpich2)
            .run(move |mut ctx: RankCtx| async move {
                if ctx.rank() == 0 {
                    ctx.set_fault_policy(policy);
                    let m = ctx.try_recv(1, TAG).await.expect("message arrives in time");
                    assert_eq!(m.bytes, 4096);
                } else {
                    ctx.send(0, 4096, TAG).await;
                }
            })
            .unwrap()
            .elapsed
            .as_nanos()
    };
    let bare = run(FaultPolicy::none());
    let armed = run(FaultPolicy {
        recv_timeout: Some(SimDuration::from_secs(5)),
        ..FaultPolicy::none()
    });
    assert_eq!(bare, armed, "an unfired timeout changed the timing");
}

#[test]
fn kill_surfaces_as_self_failed_and_peer_failed() {
    let (net, nodes) = cluster(2);
    let plan = FaultPlan::new().kill_rank(1, SimTime::from_nanos(1_000_000));
    MpiJob::new(net, nodes, MpiImpl::Mpich2)
        .with_faults(plan)
        .run(|mut ctx: RankCtx| async move {
            if ctx.rank() == 0 {
                // Give the kill time to land, then talk to the corpse.
                ctx.compute(SimDuration::from_millis(10)).await;
                assert!(ctx.peer_failed(1));
                match ctx.try_send(1, 1 << 20, TAG).await {
                    Err(MpiError::PeerFailed { rank: 1 }) => {}
                    other => panic!("expected PeerFailed, got {other:?}"),
                }
            } else {
                // Blocked in a posted receive when the kill fires.
                match ctx.try_recv(0, TAG).await {
                    Err(MpiError::SelfFailed) => {}
                    other => panic!("expected SelfFailed, got {other:?}"),
                }
            }
        })
        .unwrap();
}

#[test]
fn transient_failure_heals_through_the_retry_policy() {
    let (net, nodes) = cluster(2);
    // Rank 1 is dead from t = 1 ms to t = 6 ms.
    let plan = FaultPlan::new().restart_rank(
        1,
        SimTime::from_nanos(1_000_000),
        SimDuration::from_millis(5),
    );
    MpiJob::new(net, nodes, MpiImpl::Mpich2)
        .with_faults(plan)
        .run(|mut ctx: RankCtx| async move {
            if ctx.rank() == 0 {
                ctx.set_fault_policy(FaultPolicy {
                    retries: 5,
                    retry_backoff: SimDuration::from_millis(2),
                    ..FaultPolicy::none()
                });
                // Land inside the failure window, then retry through it.
                ctx.compute(SimDuration::from_millis(2)).await;
                assert!(ctx.peer_failed(1));
                ctx.try_send(1, 1 << 20, TAG)
                    .await
                    .expect("send succeeds once the peer restarts");
            } else {
                // Dies while posted, recovers, receives after restart.
                match ctx.try_recv(0, TAG).await {
                    Err(MpiError::SelfFailed) => {}
                    other => panic!("expected SelfFailed first, got {other:?}"),
                }
                ctx.compute(SimDuration::from_millis(10)).await; // past the window
                assert!(!ctx.peer_failed(ctx.rank()));
                let m = ctx.try_recv(0, TAG).await.expect("delivery after restart");
                assert_eq!(m.bytes, 1 << 20);
            }
        })
        .unwrap();
}

#[test]
fn wildcard_receives_survive_other_ranks_deaths() {
    // A wildcard receive must not be cancelled when some peer dies — the
    // message can still come from anyone else.
    let (net, nodes) = cluster(3);
    let plan = FaultPlan::new().kill_rank(2, SimTime::from_nanos(1_000_000));
    MpiJob::new(net, nodes, MpiImpl::Mpich2)
        .with_faults(plan)
        .run(|mut ctx: RankCtx| async move {
            match ctx.rank() {
                0 => {
                    let m = ctx.try_recv_any(TAG).await.expect("rank 1 still delivers");
                    assert_eq!(m.src, 1);
                }
                1 => {
                    ctx.compute(SimDuration::from_millis(5)).await;
                    ctx.send(0, 512, TAG).await;
                }
                _ => {
                    // Rank 2 idles until the kill reaps it; nothing posted.
                    match ctx.try_recv(0, TAG).await {
                        Err(MpiError::SelfFailed) => {}
                        other => panic!("expected SelfFailed, got {other:?}"),
                    }
                }
            }
        })
        .unwrap();
}
