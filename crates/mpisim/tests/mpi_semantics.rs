//! MPI semantics tests: matching, ordering, protocols, collectives.

use desim::SimDuration;
use mpisim::{MpiImpl, MpiJob, RankCtx, Tuning};
use netsim::{grid5000_pair, KernelConfig, Network, NodeParams, SiteParams, Topology};

const TAG: u64 = 7;

/// A one-site cluster of `n` nodes.
fn cluster(n: usize) -> (Network, Vec<netsim::NodeId>) {
    let mut t = Topology::new();
    let s = t.add_site("rennes", SiteParams::default());
    let nodes: Vec<_> = (0..n)
        .map(|_| t.add_node(s, NodeParams::default()))
        .collect();
    (Network::new(t), nodes)
}

/// An 8+8 grid with tuned kernels.
fn grid(nodes_per_site: usize, tuned: bool) -> (Network, Vec<netsim::NodeId>) {
    let (mut topo, rn, nn) = grid5000_pair(nodes_per_site);
    if tuned {
        topo.set_kernel_all(KernelConfig::tuned(4 << 20));
    }
    let mut placement = rn;
    placement.extend(nn);
    (Network::new(topo), placement)
}

fn job(net: Network, placement: Vec<netsim::NodeId>, id: MpiImpl) -> MpiJob {
    MpiJob::new(net, placement, id)
}

#[test]
fn blocking_send_recv_transfers_envelope() {
    let (net, nodes) = cluster(2);
    let report = job(net, nodes, MpiImpl::Mpich2)
        .run(|mut ctx: RankCtx| async move {
            if ctx.rank() == 0 {
                ctx.send(1, 1234, TAG).await;
            } else {
                let m = ctx.recv(0, TAG).await;
                assert_eq!(m.src, 0);
                assert_eq!(m.bytes, 1234);
                assert_eq!(m.tag, TAG);
            }
        })
        .unwrap();
    assert!(report.clean);
    assert_eq!(report.stats.p2p_messages(), 1);
}

#[test]
fn messages_do_not_overtake_on_one_pair() {
    // FIFO per (src, dst, tag): a big message sent first must be received
    // first even though a small one follows immediately.
    let (net, nodes) = cluster(2);
    job(net, nodes, MpiImpl::Mpich2)
        .run(|mut ctx: RankCtx| async move {
            if ctx.rank() == 0 {
                let r1 = ctx.isend(1, 100_000, TAG).await;
                let r2 = ctx.isend(1, 10, TAG).await;
                ctx.waitall(vec![r1, r2]).await;
            } else {
                let a = ctx.recv(0, TAG).await;
                let b = ctx.recv(0, TAG).await;
                assert_eq!(a.bytes, 100_000, "big message was sent first");
                assert_eq!(b.bytes, 10);
            }
        })
        .unwrap();
}

#[test]
fn tag_selection_matches_out_of_order() {
    let (net, nodes) = cluster(2);
    job(net, nodes, MpiImpl::Mpich2)
        .run(|mut ctx: RankCtx| async move {
            if ctx.rank() == 0 {
                ctx.send(1, 11, 1).await;
                ctx.send(1, 22, 2).await;
            } else {
                // Receive the tag-2 message first although tag-1 arrived
                // earlier (it waits in the unexpected queue).
                let b = ctx.recv(0, 2).await;
                let a = ctx.recv(0, 1).await;
                assert_eq!(b.bytes, 22);
                assert_eq!(a.bytes, 11);
            }
        })
        .unwrap();
}

#[test]
fn wildcard_source_receives_from_all() {
    let (net, nodes) = cluster(4);
    job(net, nodes, MpiImpl::Mpich2)
        .run(|mut ctx: RankCtx| async move {
            if ctx.rank() == 0 {
                let mut seen = [false; 4];
                for _ in 0..3 {
                    let m = ctx.recv_any(TAG).await;
                    assert!(!seen[m.src], "duplicate source {}", m.src);
                    seen[m.src] = true;
                }
            } else {
                ctx.send(0, 64, TAG).await;
            }
        })
        .unwrap();
}

#[test]
fn rendezvous_costs_an_extra_round_trip() {
    // Same payload, once below and once above the eager threshold: the
    // rendezvous variant must be slower by about one LAN round trip.
    fn one_way(thresh_tuning: Option<u64>) -> f64 {
        let (net, nodes) = cluster(2);
        let mut j = job(net, nodes, MpiImpl::Mpich2);
        j.tuning = Tuning {
            eager_threshold: thresh_tuning,
            socket_buffer: None,
        };
        let report = j
            .run(|mut ctx: RankCtx| async move {
                let bytes = 300 * 1024; // above MPICH2's 256 kB default
                if ctx.rank() == 0 {
                    // Warm the window, then measure.
                    for _ in 0..3 {
                        ctx.send(1, bytes, TAG).await;
                        ctx.recv(1, TAG).await;
                    }
                    let t0 = ctx.now();
                    ctx.send(1, bytes, TAG).await;
                    ctx.recv(1, TAG).await;
                    ctx.record("rt", ctx.now().since(t0).as_secs_f64());
                } else {
                    for _ in 0..4 {
                        ctx.recv(0, TAG).await;
                        ctx.send(0, bytes, TAG).await;
                    }
                }
            })
            .unwrap();
        report.values("rt")[0].1
    }
    let rndv = one_way(None); // default threshold: 300 kB goes rendezvous
    let eager = one_way(Some(64 << 20)); // tuned: eager
    assert!(
        rndv > eager + 100e-6,
        "rendezvous {rndv} not slower than eager {eager}"
    );
}

#[test]
fn unexpected_message_pays_copy_cost() {
    // Receiver posts late: the eager message waits in the unexpected queue
    // and the receive pays the extra copy. With a posted receive the copy
    // is overlapped.
    fn recv_time(post_late: bool) -> f64 {
        let (net, nodes) = cluster(2);
        let report = job(net, nodes, MpiImpl::Mpich2)
            .run(move |mut ctx: RankCtx| async move {
                let bytes = 100 << 10;
                if ctx.rank() == 0 {
                    ctx.send(1, bytes, TAG).await;
                } else {
                    if post_late {
                        // Let the message arrive first.
                        ctx.compute(SimDuration::from_millis(5)).await;
                        let t0 = ctx.now();
                        ctx.recv(0, TAG).await;
                        ctx.record("t", ctx.now().since(t0).as_secs_f64());
                    } else {
                        let t0 = ctx.now();
                        ctx.recv(0, TAG).await;
                        // Subtract nothing: the transfer itself dominates;
                        // report end-to-end.
                        ctx.record("t", ctx.now().since(t0).as_secs_f64());
                    }
                }
            })
            .unwrap();
        report.values("t")[0].1
    }
    let late = recv_time(true);
    // 100 KiB / 1.5 GB/s ≈ 68 µs of copy; the late receive pays only that
    // (message already arrived).
    assert!(
        (50e-6..120e-6).contains(&late),
        "late recv should cost ~the copy, got {late}"
    );
}

#[test]
fn sendrecv_is_deadlock_free_in_a_ring() {
    let (net, nodes) = cluster(8);
    job(net, nodes, MpiImpl::Mpich2)
        .run(|mut ctx: RankCtx| async move {
            let p = ctx.size();
            let right = (ctx.rank() + 1) % p;
            let left = (ctx.rank() + p - 1) % p;
            for _ in 0..4 {
                let m = ctx.sendrecv(right, 32 << 10, left, TAG).await;
                assert_eq!(m.src, left);
            }
        })
        .unwrap();
}

#[test]
fn barrier_synchronises_all_ranks() {
    let (net, nodes) = cluster(8);
    let report = job(net, nodes, MpiImpl::Mpich2)
        .run(|mut ctx: RankCtx| async move {
            // Rank r computes r ms, then a barrier: everyone must leave the
            // barrier no earlier than the slowest rank's 7 ms.
            ctx.compute(SimDuration::from_millis(ctx.rank() as u64))
                .await;
            ctx.barrier().await;
            ctx.record("after", ctx.now().as_secs_f64());
        })
        .unwrap();
    for (r, v) in report.values("after") {
        assert!(v >= 7e-3, "rank {r} left the barrier at {v}");
    }
}

#[test]
fn bcast_reaches_every_rank_for_all_impls() {
    for id in MpiImpl::ALL {
        for n in [3usize, 4, 8, 16] {
            let (net, nodes) = grid(n.div_ceil(2), true);
            let placement = nodes[..n].to_vec();
            let report = job(net, placement, id)
                .run(move |mut ctx: RankCtx| async move {
                    ctx.bcast(0, 128 << 10).await;
                    ctx.record("done", ctx.now().as_secs_f64());
                })
                .unwrap();
            assert!(report.clean, "{id:?} n={n} left messages behind");
            assert_eq!(report.values("done").len(), n);
        }
    }
}

#[test]
fn allreduce_completes_for_all_impls_and_sizes() {
    for id in MpiImpl::ALL {
        for n in [2usize, 5, 8, 16] {
            let (net, nodes) = grid(8, true);
            let placement = nodes[..n].to_vec();
            let report = job(net, placement, id)
                .run(move |mut ctx: RankCtx| async move {
                    ctx.allreduce(8).await;
                    ctx.allreduce(1 << 20).await;
                    ctx.barrier().await;
                })
                .unwrap();
            assert!(report.clean, "{id:?} n={n}");
        }
    }
}

#[test]
fn alltoall_and_gather_complete() {
    let (net, nodes) = cluster(8);
    let report = job(net, nodes, MpiImpl::OpenMpi)
        .run(|mut ctx: RankCtx| async move {
            ctx.alltoall(64 << 10).await;
            let sizes: Vec<u64> = (0..ctx.size() as u64).map(|d| (d + 1) * 1000).collect();
            ctx.alltoallv(&sizes).await;
            ctx.gather(0, 32 << 10).await;
            ctx.scatter(0, 32 << 10).await;
            ctx.allgather(16 << 10).await;
            ctx.barrier().await;
        })
        .unwrap();
    assert!(report.clean);
    // 5 collective call types + barrier recorded per rank.
    assert_eq!(report.stats.collective_messages(), 6 * 8);
}

#[test]
fn gridmpi_collectives_beat_oblivious_ones_on_the_grid() {
    // The paper's central collective result (Fig. 10): on 8+8 nodes over
    // the WAN, GridMPI's grid-aware bcast/allreduce are much faster than
    // the topology-oblivious scatter+ring algorithms of MPICH2.
    fn bcast_time(id: MpiImpl) -> f64 {
        let (net, placement) = grid(8, true);
        let report = job(net, placement, id)
            .with_tuning(Tuning::paper_tuned(id))
            .run(|mut ctx: RankCtx| async move {
                for _ in 0..5 {
                    ctx.bcast(0, 128 << 10).await;
                }
            })
            .unwrap();
        report.elapsed.as_secs_f64()
    }
    let gridmpi = bcast_time(MpiImpl::GridMpi);
    let mpich2 = bcast_time(MpiImpl::Mpich2);
    assert!(
        mpich2 > 2.0 * gridmpi,
        "grid-aware bcast should win big: GridMPI {gridmpi}s vs MPICH2 {mpich2}s"
    );
}

#[test]
fn grid_latency_dominates_small_messages() {
    // Table 4: one-way small-message latency ≈ 5.8 ms on the grid vs tens
    // of µs on the cluster.
    let (net, placement) = grid(1, false);
    let report = job(net, placement, MpiImpl::Mpich2)
        .run(|mut ctx: RankCtx| async move {
            if ctx.rank() == 0 {
                let t0 = ctx.now();
                ctx.send(1, 1, TAG).await;
                ctx.recv(1, TAG).await;
                ctx.record("rtt", ctx.now().since(t0).as_secs_f64());
            } else {
                ctx.recv(0, TAG).await;
                ctx.send(0, 1, TAG).await;
            }
        })
        .unwrap();
    let rtt = report.values("rtt")[0].1;
    assert!(
        (11.6e-3..11.75e-3).contains(&rtt),
        "grid pingpong rtt = {rtt}"
    );
}

#[test]
fn per_rank_times_and_records_are_reported() {
    let (net, nodes) = cluster(3);
    let report = job(net, nodes, MpiImpl::Mpich2)
        .run(|ctx: RankCtx| async move {
            ctx.compute(SimDuration::from_millis(1 + ctx.rank() as u64))
                .await;
            ctx.record("x", ctx.rank() as f64);
        })
        .unwrap();
    assert_eq!(report.per_rank.len(), 3);
    assert!(report.per_rank[2] > report.per_rank[0]);
    assert_eq!(report.values("x").len(), 3);
}

#[test]
fn compute_rate_scales_with_cpu() {
    // Rennes (2.2 Gflop/s) computes the same work faster than Nancy (2.0).
    let (net, placement) = grid(1, false);
    let report = job(net, placement, MpiImpl::Mpich2)
        .run(|ctx: RankCtx| async move {
            let t0 = ctx.now();
            ctx.compute_gflop(10.0).await;
            ctx.record("t", ctx.now().since(t0).as_secs_f64());
        })
        .unwrap();
    let vals = report.values("t");
    let rennes = vals[0].1;
    let nancy = vals[1].1;
    assert!((rennes - 10.0 / 2.2).abs() < 1e-6);
    assert!((nancy - 10.0 / 2.0).abs() < 1e-6);
    assert!(nancy > rennes);
}
