//! Sub-communicator semantics and the site-split surface.

use desim::SimDuration;
use mpisim::{MpiImpl, MpiJob, RankCtx};
use netsim::{grid5000_pair, KernelConfig, Network, NodeId};

fn grid_8_8() -> (Network, Vec<NodeId>) {
    let (mut topo, rn, nn) = grid5000_pair(8);
    topo.set_kernel_all(KernelConfig::tuned_with_default(4 << 20, 4 << 20));
    let mut placement = rn;
    placement.extend(nn);
    (Network::new(topo), placement)
}

#[test]
fn comm_split_groups_by_color() {
    let (net, placement) = grid_8_8();
    MpiJob::new(net, placement, MpiImpl::Mpich2)
        .run(|ctx: RankCtx| async move {
            let parity = ctx.comm_split(|r| (r % 2) as u64);
            assert_eq!(parity.size(), 8);
            assert_eq!(parity.world_rank(parity.rank()), ctx.rank());
            for i in 0..parity.size() {
                assert_eq!(parity.world_rank(i) % 2, ctx.rank() % 2);
            }
        })
        .unwrap();
}

#[test]
fn comm_site_matches_topology() {
    let (net, placement) = grid_8_8();
    MpiJob::new(net, placement, MpiImpl::Mpich2)
        .run(|ctx: RankCtx| async move {
            let site = ctx.comm_site();
            assert_eq!(site.size(), 8);
            let my_site = ctx.site_of_rank(ctx.rank());
            for i in 0..site.size() {
                assert_eq!(ctx.site_of_rank(site.world_rank(i)), my_site);
            }
        })
        .unwrap();
}

#[test]
fn site_local_collectives_avoid_the_wan() {
    // An intra-site bcast of 1 MB must complete in LAN time (≪ the 5.8 ms
    // WAN one-way), while a world bcast pays the WAN.
    let (net, placement) = grid_8_8();
    let report = MpiJob::new(net, placement, MpiImpl::MpichMadeleine)
        .run(|mut ctx: RankCtx| async move {
            let site = ctx.comm_site();
            let t0 = ctx.now();
            ctx.comm_bcast(&site, 0, 1 << 20).await;
            ctx.record("local", ctx.now().since(t0).as_secs_f64());
            ctx.barrier().await;
            let t1 = ctx.now();
            ctx.bcast(0, 1 << 20).await;
            ctx.record("world", ctx.now().since(t1).as_secs_f64());
        })
        .unwrap();
    let local_max = report
        .values("local")
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0, f64::max);
    let world_max = report
        .values("world")
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0, f64::max);
    // LAN work (tree + window ramp) costs tens of ms for 1 MB; the WAN
    // bcast must additionally pay inter-site latency and bandwidth.
    assert!(
        local_max < world_max,
        "site-local bcast ({local_max}s) should beat the world bcast ({world_max}s)"
    );
    assert!(
        world_max > 5.8e-3,
        "world bcast cannot beat the WAN latency: {world_max}s"
    );
}

#[test]
fn subcomm_collectives_complete_cleanly() {
    let (net, placement) = grid_8_8();
    let report = MpiJob::new(net, placement, MpiImpl::GridMpi)
        .run(|mut ctx: RankCtx| async move {
            let site = ctx.comm_site();
            ctx.comm_barrier(&site).await;
            ctx.comm_allreduce(&site, 4096).await;
            ctx.comm_allgather(&site, 1024).await;
            ctx.comm_reduce(&site, 0, 64 << 10).await;
            ctx.comm_bcast(&site, 0, 64 << 10).await;
            // Odd split exercises the non-power-of-two fold.
            let thirds = ctx.comm_split(|r| (r % 3) as u64);
            ctx.comm_allreduce(&thirds, 10_000).await;
            ctx.comm_barrier(&thirds).await;
            ctx.barrier().await;
        })
        .unwrap();
    assert!(report.clean);
}

#[test]
fn hierarchical_allreduce_via_subcomms_matches_builtin_shape() {
    // A hand-written hierarchical allreduce (site reduce → leader exchange
    // → site bcast) should be competitive with the built-in GridAware one.
    let (net, placement) = grid_8_8();
    let report = MpiJob::new(net, placement, MpiImpl::GridMpi)
        .run(|mut ctx: RankCtx| async move {
            let bytes = 256 << 10;
            let site = ctx.comm_site();
            let t0 = ctx.now();
            // Hand-rolled hierarchy.
            ctx.comm_reduce(&site, 0, bytes).await;
            if site.rank() == 0 {
                let peer = if ctx.rank() == 0 { 8 } else { 0 };
                ctx.sendrecv(peer, bytes, peer, 77).await;
            }
            ctx.comm_bcast(&site, 0, bytes).await;
            ctx.record("manual", ctx.now().since(t0).as_secs_f64());
            ctx.barrier().await;
            let t1 = ctx.now();
            ctx.allreduce(bytes).await;
            ctx.record("builtin", ctx.now().since(t1).as_secs_f64());
        })
        .unwrap();
    let manual = report
        .values("manual")
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0, f64::max);
    let builtin = report
        .values("builtin")
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0, f64::max);
    assert!(
        manual < 3.0 * builtin && builtin < 3.0 * manual,
        "hand-rolled {manual}s vs builtin {builtin}s diverge"
    );
    let _ = SimDuration::ZERO;
}
