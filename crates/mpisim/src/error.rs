//! Typed MPI failures and the retry/timeout policy governing the
//! fallible `try_*` API of [`crate::RankCtx`].
//!
//! Without fault injection every operation succeeds and the classic
//! infallible surface (`send`/`recv`/`wait`) stays the natural one. Under
//! a [`desim::fault::FaultPlan`] the runtime surfaces failures as values:
//! a receive can time out, a peer can be down, and the calling rank can
//! itself be inside a failure window. Fault-tolerant programs (e.g. the
//! master/worker ray tracer) handle the `Err`s; everything else keeps the
//! infallible wrappers, which panic with the typed error's message — the
//! behaviour real MPI jobs exhibit when a rank dies without a
//! fault-tolerance layer.

use std::fmt;

use desim::SimDuration;

/// Why an MPI operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MpiError {
    /// The operation did not complete within the policy's timeout.
    Timeout {
        /// Operation name (`"recv"`, …).
        op: &'static str,
        /// How long the rank waited before giving up.
        waited: SimDuration,
    },
    /// The peer rank is inside a failure window (perfect failure
    /// detector: peers learn of a death immediately and reliably).
    PeerFailed {
        /// The failed peer.
        rank: usize,
    },
    /// The calling rank is itself inside a failure window; its pending
    /// operations are aborted so the program can observe its own death
    /// and stop.
    SelfFailed,
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Timeout { op, waited } => {
                write!(f, "{op} timed out after {:.3} s", waited.as_secs_f64())
            }
            MpiError::PeerFailed { rank } => write!(f, "peer rank {rank} failed"),
            MpiError::SelfFailed => write!(f, "this rank was killed"),
        }
    }
}

impl std::error::Error for MpiError {}

/// Per-rank policy for the fallible API: how long receives may block and
/// how sends to a currently-dead peer are retried.
///
/// The default ([`FaultPolicy::none`]) adds **zero** scheduler events —
/// no timeout timers are armed, so runs without a policy are bit-identical
/// to runs predating the fallible API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Abort a blocking receive that has waited this long. `None` waits
    /// forever (classic MPI semantics).
    pub recv_timeout: Option<SimDuration>,
    /// How many times `try_send` re-checks a peer that is currently down
    /// before returning [`MpiError::PeerFailed`].
    pub retries: u32,
    /// Pause before the first retry; doubles on each subsequent attempt
    /// (exponential backoff, mirroring the grid-aware timeout tuning the
    /// paper applies to MPICH-G2's TCP layer).
    pub retry_backoff: SimDuration,
}

impl FaultPolicy {
    /// No timeouts, no retries: operations block forever and sends to a
    /// dead peer fail immediately.
    pub fn none() -> FaultPolicy {
        FaultPolicy {
            recv_timeout: None,
            retries: 0,
            retry_backoff: SimDuration::from_millis(250),
        }
    }

    /// A policy sized for WAN grids: 10 s receive timeout, 3 retries
    /// starting at 250 ms backoff (covers the longest injected RTO storm
    /// on an 11.6 ms-RTT path).
    pub fn grid_default() -> FaultPolicy {
        FaultPolicy {
            recv_timeout: Some(SimDuration::from_secs(10)),
            retries: 3,
            retry_backoff: SimDuration::from_millis(250),
        }
    }

    /// Backoff before retry number `attempt` (0-based): base × 2^attempt,
    /// capped at 2^6.
    pub(crate) fn backoff(&self, attempt: u32) -> SimDuration {
        self.retry_backoff * (1u64 << attempt.min(6))
    }
}

impl Default for FaultPolicy {
    fn default() -> FaultPolicy {
        FaultPolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = FaultPolicy {
            retry_backoff: SimDuration::from_millis(100),
            ..FaultPolicy::none()
        };
        assert_eq!(p.backoff(0), SimDuration::from_millis(100));
        assert_eq!(p.backoff(1), SimDuration::from_millis(200));
        assert_eq!(p.backoff(3), SimDuration::from_millis(800));
        assert_eq!(p.backoff(6), p.backoff(60));
    }

    #[test]
    fn errors_display() {
        let e = MpiError::Timeout {
            op: "recv",
            waited: SimDuration::from_secs(2),
        };
        assert!(e.to_string().contains("recv timed out"));
        assert!(MpiError::PeerFailed { rank: 3 }.to_string().contains('3'));
    }
}
