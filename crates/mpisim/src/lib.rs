#![warn(missing_docs)]

//! # mpisim — an MPI runtime model over the `netsim` substrate
//!
//! Models the MPI layer of the paper's experimental stack: blocking and
//! nonblocking point-to-point with the eager/rendezvous protocol split of
//! Fig. 4, the collectives used by the NAS Parallel Benchmarks, and — the
//! heart of the study — **per-implementation behaviour profiles** for
//! MPICH2, GridMPI, MPICH-Madeleine and OpenMPI (software overheads,
//! eager thresholds, socket policies, pacing, collective algorithms,
//! failure modes).
//!
//! ```
//! use desim::SimDuration;
//! use mpisim::{MpiImpl, MpiJob};
//! use netsim::{grid5000_pair, Network};
//!
//! // 1-rank-per-site pingpong, Rennes <-> Nancy, MPICH2 defaults.
//! let (topo, rennes, nancy) = grid5000_pair(1);
//! let job = MpiJob::new(
//!     Network::new(topo),
//!     vec![rennes[0], nancy[0]],
//!     MpiImpl::Mpich2,
//! );
//! let report = job
//!     .run(|mut ctx: mpisim::RankCtx| async move {
//!         const TAG: u64 = 1;
//!         if ctx.rank() == 0 {
//!             ctx.send(1, 1, TAG).await;
//!             ctx.recv(1, TAG).await;
//!         } else {
//!             ctx.recv(0, TAG).await;
//!             ctx.send(0, 1, TAG).await;
//!         }
//!     })
//!     .unwrap();
//! // One 1-byte round trip across the 11.6 ms WAN ≈ 11.6 ms + overheads.
//! assert!(report.elapsed > SimDuration::from_millis(11));
//! assert!(report.elapsed < SimDuration::from_millis(13));
//! ```

mod collectives;
mod comm;
mod error;
mod exec;
mod launcher;
mod profile;
mod rank;
mod stats;
pub mod trace;
mod world;

pub use collectives::{CollAlgo, CollConfig, CollOp, CollSel, SizeClass};
pub use comm::SubComm;
pub use desim::fault::{FaultEvent, FaultKind, FaultPlan};
pub use desim::obs::Obs;
pub use error::{FaultPolicy, MpiError};
pub use exec::{CommPattern, ExecConfig};
pub use launcher::{Engine, MpiJob, MpiProgram, RunReport};
pub use profile::{
    AllreduceAlgo, BcastAlgo, CollectiveSuite, ImplProfile, MpiImpl, SocketPolicy, Tuning,
};
pub use rank::{RankCtx, Request};
pub use stats::CommStats;
pub use world::{MsgInfo, CTRL_BYTES, HEADER_BYTES};
