//! Operation tracing: per-rank timelines of compute, point-to-point and
//! collective activity — the instrumentation a "modified MPI
//! implementation" (§3.1) provides, generalised into a reusable facility.
//!
//! Enable with [`crate::MpiJob::with_tracing`]; the run report then
//! carries every traced span, and [`TraceSummary`] digests them into the
//! numbers a performance analyst asks first: how much of each rank's time
//! is computation vs communication, and which rank pairs move the bytes.

/// What a traced span was doing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Local computation.
    Compute,
    /// Send initiation (eager buffering or rendezvous handshake start).
    Send,
    /// Blocked in a receive (or a receive-completing wait).
    Recv,
    /// Blocked completing a send request.
    WaitSend,
    /// Inside a collective operation (name attached).
    Collective(&'static str),
}

impl TraceKind {
    /// Stable operation name for exports (collectives report their own
    /// name, e.g. `"bcast"`).
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Compute => "compute",
            TraceKind::Send => "send",
            TraceKind::Recv => "recv",
            TraceKind::WaitSend => "wait_send",
            TraceKind::Collective(op) => op,
        }
    }
}

/// One traced span of one rank.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Acting rank.
    pub rank: usize,
    /// Operation kind.
    pub kind: TraceKind,
    /// Peer rank for point-to-point operations.
    pub peer: Option<usize>,
    /// Payload bytes (0 for waits/compute).
    pub bytes: u64,
    /// Span start, nanoseconds of virtual time.
    pub start_ns: u64,
    /// Span end, nanoseconds of virtual time.
    pub end_ns: u64,
    /// Deterministic message id linking a send span to its matching
    /// receive span (0 when the span carries no point-to-point message).
    pub msg_id: u64,
}

impl TraceEvent {
    /// Span length in seconds. A malformed span (`end_ns < start_ns`)
    /// clamps to zero rather than wrapping to ~584 years.
    pub fn secs(&self) -> f64 {
        self.end_ns.saturating_sub(self.start_ns) as f64 / 1e9
    }
}

/// Per-rank activity breakdown.
#[derive(Clone, Debug, Default)]
pub struct RankBreakdown {
    /// Seconds of local computation.
    pub compute_secs: f64,
    /// Seconds blocked in point-to-point communication.
    pub p2p_secs: f64,
    /// Seconds inside collectives.
    pub collective_secs: f64,
    /// Bytes sent by this rank (application payloads).
    pub bytes_sent: u64,
}

/// Digest of a traced run.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// Breakdown per rank.
    pub per_rank: Vec<RankBreakdown>,
    /// Heaviest directed rank pairs by payload bytes, descending.
    pub top_pairs: Vec<(usize, usize, u64)>,
    /// Total traced events.
    pub events: usize,
}

impl TraceSummary {
    /// Build a summary from raw spans. `ranks` sizes the breakdown table.
    pub fn from_events(events: &[TraceEvent], ranks: usize) -> TraceSummary {
        let mut per_rank = vec![RankBreakdown::default(); ranks];
        let mut pair_bytes: std::collections::BTreeMap<(usize, usize), u64> =
            std::collections::BTreeMap::new();
        for e in events {
            let b = &mut per_rank[e.rank];
            match e.kind {
                TraceKind::Compute => b.compute_secs += e.secs(),
                TraceKind::Send | TraceKind::WaitSend => {
                    b.p2p_secs += e.secs();
                    if e.kind == TraceKind::Send {
                        b.bytes_sent += e.bytes;
                        if let Some(peer) = e.peer {
                            *pair_bytes.entry((e.rank, peer)).or_insert(0) += e.bytes;
                        }
                    }
                }
                TraceKind::Recv => b.p2p_secs += e.secs(),
                TraceKind::Collective(_) => b.collective_secs += e.secs(),
            }
        }
        let mut top_pairs: Vec<(usize, usize, u64)> = pair_bytes
            .into_iter()
            .map(|((a, b), n)| (a, b, n))
            .collect();
        top_pairs.sort_by(|x, y| y.2.cmp(&x.2).then((x.0, x.1).cmp(&(y.0, y.1))));
        top_pairs.truncate(10);
        TraceSummary {
            per_rank,
            top_pairs,
            events: events.len(),
        }
    }
}

/// Render an ASCII space-time diagram of the traced run: one row per rank,
/// `width` columns over `[t0, t1]`; `C` compute, `s` send/wait, `r`
/// receive, `A` collective, `.` idle.
pub fn ascii_timeline(
    events: &[TraceEvent],
    ranks: usize,
    t0_ns: u64,
    t1_ns: u64,
    width: usize,
) -> Vec<String> {
    if width == 0 || t1_ns <= t0_ns {
        // A zero-width canvas or an empty/inverted window has nothing to
        // paint (and `width - 1` below would underflow).
        return vec![String::new(); ranks];
    }
    let span = (t1_ns.saturating_sub(t0_ns)).max(1) as f64;
    let mut rows = vec![vec!['.'; width]; ranks];
    // Paint in priority order: collectives under p2p under compute, so the
    // densest information wins ties within a cell.
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by_key(|e| match e.kind {
        TraceKind::Collective(_) => 0,
        TraceKind::Recv | TraceKind::Send | TraceKind::WaitSend => 1,
        TraceKind::Compute => 2,
    });
    for e in ordered {
        if e.rank >= ranks || e.end_ns < t0_ns || e.start_ns > t1_ns {
            continue;
        }
        let a = ((e.start_ns.max(t0_ns) - t0_ns) as f64 / span * width as f64) as usize;
        let b = ((e.end_ns.min(t1_ns) - t0_ns) as f64 / span * width as f64) as usize;
        let c = match e.kind {
            TraceKind::Compute => 'C',
            TraceKind::Send | TraceKind::WaitSend => 's',
            TraceKind::Recv => 'r',
            TraceKind::Collective(_) => 'A',
        };
        for cell in &mut rows[e.rank][a.min(width - 1)..=b.min(width - 1)] {
            *cell = c;
        }
    }
    rows.into_iter().map(|r| r.into_iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        rank: usize,
        kind: TraceKind,
        peer: Option<usize>,
        bytes: u64,
        a: u64,
        b: u64,
    ) -> TraceEvent {
        TraceEvent {
            rank,
            kind,
            peer,
            bytes,
            start_ns: a,
            end_ns: b,
            msg_id: 0,
        }
    }

    #[test]
    fn summary_accumulates_by_kind() {
        let events = vec![
            ev(0, TraceKind::Compute, None, 0, 0, 1_000_000_000),
            ev(
                0,
                TraceKind::Send,
                Some(1),
                500,
                1_000_000_000,
                1_100_000_000,
            ),
            ev(1, TraceKind::Recv, Some(0), 0, 0, 1_100_000_000),
            ev(
                1,
                TraceKind::Collective("bcast"),
                None,
                64,
                2_000_000_000,
                2_500_000_000,
            ),
        ];
        let s = TraceSummary::from_events(&events, 2);
        assert!((s.per_rank[0].compute_secs - 1.0).abs() < 1e-9);
        assert!((s.per_rank[0].p2p_secs - 0.1).abs() < 1e-9);
        assert_eq!(s.per_rank[0].bytes_sent, 500);
        assert!((s.per_rank[1].p2p_secs - 1.1).abs() < 1e-9);
        assert!((s.per_rank[1].collective_secs - 0.5).abs() < 1e-9);
        assert_eq!(s.top_pairs, vec![(0, 1, 500)]);
    }

    #[test]
    fn timeline_paints_rows() {
        let events = vec![
            ev(0, TraceKind::Compute, None, 0, 0, 50),
            ev(0, TraceKind::Recv, Some(1), 0, 50, 100),
            ev(1, TraceKind::Collective("barrier"), None, 0, 0, 100),
        ];
        let rows = ascii_timeline(&events, 2, 0, 100, 10);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with('C'));
        assert!(rows[0].ends_with('r'));
        assert!(rows[1].chars().all(|c| c == 'A'));
    }

    #[test]
    fn timeline_clips_out_of_range_events() {
        let events = vec![ev(0, TraceKind::Compute, None, 0, 200, 300)];
        let rows = ascii_timeline(&events, 1, 0, 100, 10);
        assert!(rows[0].chars().all(|c| c == '.'));
    }

    #[test]
    fn timeline_degenerate_inputs_yield_empty_rows() {
        let events = vec![ev(0, TraceKind::Compute, None, 0, 0, 50)];
        // width == 0 used to underflow `width - 1` in the slice bound.
        let rows = ascii_timeline(&events, 2, 0, 100, 0);
        assert_eq!(rows, vec![String::new(), String::new()]);
        // Empty window (t1 == t0) and inverted window (t1 < t0).
        let rows = ascii_timeline(&events, 1, 100, 100, 10);
        assert_eq!(rows, vec![String::new()]);
        let rows = ascii_timeline(&events, 1, 100, 50, 10);
        assert_eq!(rows, vec![String::new()]);
        // No ranks: no rows, still no panic.
        assert!(ascii_timeline(&events, 0, 0, 100, 0).is_empty());
    }

    #[test]
    fn secs_clamps_inverted_spans() {
        let e = ev(0, TraceKind::Compute, None, 0, 100, 40);
        assert_eq!(e.secs(), 0.0);
        // A summary over malformed spans stays finite and non-negative.
        let s = TraceSummary::from_events(&[e], 1);
        assert_eq!(s.per_rank[0].compute_secs, 0.0);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TraceKind::Compute.name(), "compute");
        assert_eq!(TraceKind::WaitSend.name(), "wait_send");
        assert_eq!(TraceKind::Collective("allreduce").name(), "allreduce");
    }
}
