//! Sub-communicators: `MPI_Comm_split`-style rank groups with their own
//! collective operations — the building block grid-aware applications use
//! to keep traffic inside a site (and what the hierarchical algorithms of
//! [`crate::collectives`] do internally).

use crate::collectives;
use crate::rank::RankCtx;

/// A sub-communicator: an ordered subset of world ranks that the owning
/// rank belongs to.
#[derive(Clone, Debug)]
pub struct SubComm {
    ranks: Vec<usize>,
    my_pos: usize,
}

impl SubComm {
    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// The calling rank's index within this communicator.
    pub fn rank(&self) -> usize {
        self.my_pos
    }

    /// World rank of communicator index `i`.
    pub fn world_rank(&self, i: usize) -> usize {
        self.ranks[i]
    }

    /// The member world ranks, in communicator order.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }
}

impl RankCtx {
    /// Split the world by `color` (`MPI_Comm_split` with key = world
    /// rank). Every rank must call this with its own colour; ranks sharing
    /// a colour form one sub-communicator. Purely local — the grouping is
    /// derived from `color_of`, which must be a pure function of the world
    /// rank on every caller.
    pub fn comm_split(&self, color_of: impl Fn(usize) -> u64) -> SubComm {
        let my_color = color_of(self.rank());
        let ranks: Vec<usize> = (0..self.size())
            .filter(|&r| color_of(r) == my_color)
            .collect();
        let my_pos = ranks
            .iter()
            .position(|&r| r == self.rank())
            .expect("caller has its own colour");
        SubComm { ranks, my_pos }
    }

    /// The sub-communicator of all ranks on this rank's site — the
    /// topology-aware split every grid library builds first.
    pub fn comm_site(&self) -> SubComm {
        let site = self.world().rank_site.clone();
        self.comm_split(|r| site[r] as u64)
    }

    /// Binomial broadcast within a sub-communicator from communicator
    /// root index `root`.
    pub async fn comm_bcast(&mut self, comm: &SubComm, root: usize, bytes: u64) {
        let group = comm.ranks.clone();
        let root_world = comm.world_rank(root);
        self.coll_on("comm_bcast", bytes, async |ctx, tag| {
            collectives::subgroup_bcast(ctx, &group, root_world, bytes, tag).await;
        })
        .await;
    }

    /// Binomial reduce within a sub-communicator to root index `root`.
    pub async fn comm_reduce(&mut self, comm: &SubComm, root: usize, bytes: u64) {
        let group = comm.ranks.clone();
        let root_world = comm.world_rank(root);
        self.coll_on("comm_reduce", bytes, async |ctx, tag| {
            collectives::subgroup_reduce(ctx, &group, root_world, bytes, tag).await;
        })
        .await;
    }

    /// Recursive-doubling allreduce within a sub-communicator.
    pub async fn comm_allreduce(&mut self, comm: &SubComm, bytes: u64) {
        let group = comm.ranks.clone();
        self.coll_on("comm_allreduce", bytes, async |ctx, tag| {
            collectives::subgroup_allreduce(ctx, &group, bytes, tag).await;
        })
        .await;
    }

    /// Ring allgather within a sub-communicator (`bytes_each` per member).
    pub async fn comm_allgather(&mut self, comm: &SubComm, bytes_each: u64) {
        let group = comm.ranks.clone();
        self.coll_on("comm_allgather", bytes_each, async |ctx, tag| {
            collectives::subgroup_allgather(ctx, &group, bytes_each, tag).await;
        })
        .await;
    }

    /// Dissemination barrier within a sub-communicator.
    pub async fn comm_barrier(&mut self, comm: &SubComm) {
        let group = comm.ranks.clone();
        self.coll_on("comm_barrier", 0, async |ctx, tag| {
            collectives::subgroup_barrier(ctx, &group, tag).await;
        })
        .await;
    }
}
