//! Per-run communication statistics — the instrumentation behind the
//! paper's Table 2 ("we have run each NAS with a modified MPI
//! implementation to find their communication pattern").

use std::collections::BTreeMap;

/// Aggregated communication statistics of one MPI run.
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    /// Application-level point-to-point sends: payload size → count.
    pub p2p_sizes: BTreeMap<u64, u64>,
    /// Application-level collective calls: (operation, payload size) → count.
    pub collective_calls: BTreeMap<(String, u64), u64>,
    /// Wire-level messages produced by all protocols (fragments, control
    /// messages, collective steps).
    pub wire_messages: u64,
    /// Wire-level bytes (headers included).
    pub wire_bytes: u64,
    /// Application payload bytes per directed rank pair (includes
    /// collective steps) — the input to placement optimisation.
    pub pair_bytes: BTreeMap<(usize, usize), u64>,
    /// Message counts per directed rank pair (includes collective steps).
    pub pair_msgs: BTreeMap<(usize, usize), u64>,
}

impl CommStats {
    /// Record one application-level point-to-point send.
    pub fn record_p2p(&mut self, bytes: u64) {
        *self.p2p_sizes.entry(bytes).or_insert(0) += 1;
    }

    /// Record one application-level collective call.
    pub fn record_collective(&mut self, op: &str, bytes: u64) {
        *self
            .collective_calls
            .entry((op.to_string(), bytes))
            .or_insert(0) += 1;
    }

    /// Record one wire-level message.
    pub fn record_wire(&mut self, bytes: u64) {
        self.wire_messages += 1;
        self.wire_bytes += bytes;
    }

    /// Record payload bytes flowing between a directed rank pair.
    pub fn record_pair(&mut self, src: usize, dst: usize, bytes: u64) {
        *self.pair_bytes.entry((src, dst)).or_insert(0) += bytes;
        *self.pair_msgs.entry((src, dst)).or_insert(0) += 1;
    }

    /// Total application-level point-to-point messages.
    pub fn p2p_messages(&self) -> u64 {
        self.p2p_sizes.values().sum()
    }

    /// Total application-level point-to-point payload bytes.
    pub fn p2p_bytes(&self) -> u64 {
        self.p2p_sizes.iter().map(|(sz, n)| sz * n).sum()
    }

    /// Total collective calls.
    pub fn collective_messages(&self) -> u64 {
        self.collective_calls.values().sum()
    }

    /// Summarise point-to-point sizes into `(min, max, count)` buckets by
    /// powers of two — the shape of the paper's Table 2 rows.
    pub fn p2p_buckets(&self) -> Vec<(u64, u64, u64)> {
        let mut buckets: BTreeMap<u32, (u64, u64, u64)> = BTreeMap::new();
        for (&sz, &n) in &self.p2p_sizes {
            let k = 64 - sz.max(1).leading_zeros();
            let e = buckets.entry(k).or_insert((u64::MAX, 0, 0));
            e.0 = e.0.min(sz);
            e.1 = e.1.max(sz);
            e.2 += n;
        }
        buckets.into_values().collect()
    }

    /// Merge another run's statistics into this one.
    pub fn merge(&mut self, other: &CommStats) {
        for (&sz, &n) in &other.p2p_sizes {
            *self.p2p_sizes.entry(sz).or_insert(0) += n;
        }
        for ((op, sz), &n) in &other.collective_calls {
            *self.collective_calls.entry((op.clone(), *sz)).or_insert(0) += n;
        }
        self.wire_messages += other.wire_messages;
        self.wire_bytes += other.wire_bytes;
        for (&pair, &n) in &other.pair_bytes {
            *self.pair_bytes.entry(pair).or_insert(0) += n;
        }
        for (&pair, &n) in &other.pair_msgs {
            *self.pair_msgs.entry(pair).or_insert(0) += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_recording_and_totals() {
        let mut s = CommStats::default();
        s.record_p2p(1000);
        s.record_p2p(1000);
        s.record_p2p(8);
        assert_eq!(s.p2p_messages(), 3);
        assert_eq!(s.p2p_bytes(), 2008);
        assert_eq!(s.p2p_sizes[&1000], 2);
    }

    #[test]
    fn buckets_group_by_power_of_two() {
        let mut s = CommStats::default();
        s.record_p2p(960);
        s.record_p2p(1000);
        s.record_p2p(1040);
        s.record_p2p(147_000);
        let b = s.p2p_buckets();
        // 960 lands in the 512..1024 bucket; 1000/1040 in 1024..2048.
        assert_eq!(b.len(), 3);
        let total: u64 = b.iter().map(|x| x.2).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CommStats::default();
        a.record_p2p(4);
        a.record_collective("bcast", 128);
        let mut b = CommStats::default();
        b.record_p2p(4);
        b.record_wire(100);
        a.merge(&b);
        assert_eq!(a.p2p_sizes[&4], 2);
        assert_eq!(a.wire_bytes, 100);
        assert_eq!(a.collective_calls[&("bcast".to_string(), 128)], 1);
    }
}
