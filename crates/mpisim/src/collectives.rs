//! Collective-operation algorithms.
//!
//! Three families, matching §2.1 of the paper:
//!
//! * **Binomial / recursive doubling** — the MPICH-1-era defaults
//!   (MPICH-Madeleine).
//! * **Scatter + ring allgather** (Van de Geijn) and **Rabenseifner** for
//!   large messages — the MPICH2/OpenMPI defaults. These are
//!   topology-*oblivious*: their ring and butterfly steps cross the WAN
//!   over and over, which is what makes FT and IS so slow on the grid for
//!   the non-grid-aware implementations (Fig. 10).
//! * **Grid-aware hierarchical** algorithms (GridMPI, after Matsuda et al.,
//!   Cluster'06): intra-site trees plus one set of *parallel* inter-site
//!   transfers, exploiting the fact that the WAN backbone is faster than a
//!   single node's NIC.

use crate::rank::RankCtx;

/// Tag namespace for collective traffic (clear of application tags).
pub(crate) fn coll_tag(seq: u64) -> u64 {
    (1 << 62) | seq
}

fn prev_pow2(n: usize) -> usize {
    let mut p = 1;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

/// Dissemination barrier: ⌈log₂ p⌉ rounds of 1-byte messages.
pub(crate) async fn barrier(ctx: &mut RankCtx, tag: u64) {
    let p = ctx.size();
    let r = ctx.rank();
    let mut k = 1;
    while k < p {
        let to = (r + k) % p;
        let from = (r + p - k) % p;
        let req = ctx.send_raw(to, 1, tag).await;
        ctx.recv(from, tag).await;
        ctx.wait(req).await;
        k <<= 1;
    }
}

/// Binomial-tree broadcast over an arbitrary rank subgroup.
async fn subgroup_binomial_bcast(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = group
        .iter()
        .position(|&g| g == ctx.rank())
        .expect("caller is in group");
    let rootpos = group
        .iter()
        .position(|&g| g == root)
        .expect("root is in group");
    let vrank = (me + p - rootpos) % p;
    let real = |v: usize| group[(v + rootpos) % p];
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            ctx.recv(real(vrank - mask), tag).await;
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    let mut reqs = Vec::new();
    while mask > 0 {
        if vrank + mask < p {
            reqs.push(ctx.send_raw(real(vrank + mask), bytes, tag).await);
        }
        mask >>= 1;
    }
    for r in reqs {
        ctx.wait(r).await;
    }
}

/// Binomial-tree reduce over an arbitrary rank subgroup.
async fn subgroup_binomial_reduce(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = group
        .iter()
        .position(|&g| g == ctx.rank())
        .expect("caller is in group");
    let rootpos = group
        .iter()
        .position(|&g| g == root)
        .expect("root is in group");
    let vrank = (me + p - rootpos) % p;
    let real = |v: usize| group[(v + rootpos) % p];
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            let req = ctx.send_raw(real(vrank - mask), bytes, tag).await;
            ctx.wait(req).await;
            break;
        }
        if vrank + mask < p {
            ctx.recv(real(vrank + mask), tag).await;
        }
        mask <<= 1;
    }
}

/// Ring allgather over a subgroup: `steps = |group| - 1` rounds of
/// `chunk` bytes to the right neighbour.
async fn subgroup_ring_allgather(ctx: &mut RankCtx, group: &[usize], chunk: u64, tag: u64) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = group
        .iter()
        .position(|&g| g == ctx.rank())
        .expect("caller is in group");
    let right = group[(me + 1) % p];
    let left = group[(me + p - 1) % p];
    for _ in 0..p - 1 {
        let rr = ctx.irecv(left, tag);
        let sr = ctx.send_raw(right, chunk, tag).await;
        ctx.wait(rr).await;
        ctx.wait(sr).await;
    }
}

/// Binomial bcast over an explicit subgroup (sub-communicator surface).
pub(crate) async fn subgroup_bcast(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    subgroup_binomial_bcast(ctx, group, root, bytes, tag).await;
}

/// Binomial reduce over an explicit subgroup (sub-communicator surface).
pub(crate) async fn subgroup_reduce(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    subgroup_binomial_reduce(ctx, group, root, bytes, tag).await;
}

/// Ring allgather over an explicit subgroup (sub-communicator surface).
pub(crate) async fn subgroup_allgather(
    ctx: &mut RankCtx,
    group: &[usize],
    bytes_each: u64,
    tag: u64,
) {
    subgroup_ring_allgather(ctx, group, bytes_each, tag).await;
}

/// Dissemination barrier over an explicit subgroup.
pub(crate) async fn subgroup_barrier(ctx: &mut RankCtx, group: &[usize], tag: u64) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = group
        .iter()
        .position(|&g| g == ctx.rank())
        .expect("caller is in group");
    let mut k = 1;
    while k < p {
        let to = group[(me + k) % p];
        let from = group[(me + p - k) % p];
        let req = ctx.send_raw(to, 1, tag).await;
        ctx.recv(from, tag).await;
        ctx.wait(req).await;
        k <<= 1;
    }
}

/// Recursive-doubling allreduce over an explicit subgroup (non-power-of-two
/// sizes fold into the nearest power of two).
pub(crate) async fn subgroup_allreduce(ctx: &mut RankCtx, group: &[usize], bytes: u64, tag: u64) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = group
        .iter()
        .position(|&g| g == ctx.rank())
        .expect("caller is in group");
    let p2 = prev_pow2(p);
    let extra = p - p2;
    if me >= p2 {
        let peer = group[me - p2];
        let req = ctx.send_raw(peer, bytes, tag).await;
        ctx.wait(req).await;
        ctx.recv(peer, tag).await;
        return;
    }
    if me < extra {
        ctx.recv(group[me + p2], tag).await;
    }
    let mut mask = 1;
    while mask < p2 {
        let partner = group[me ^ mask];
        ctx.sendrecv(partner, bytes, partner, tag).await;
        mask <<= 1;
    }
    if me < extra {
        let req = ctx.send_raw(group[me + p2], bytes, tag).await;
        ctx.wait(req).await;
    }
}

/// `MPI_Bcast` dispatch by implementation profile.
pub(crate) async fn bcast(ctx: &mut RankCtx, root: usize, bytes: u64, tag: u64) {
    use crate::profile::BcastAlgo;
    let p = ctx.size();
    if p <= 1 {
        return;
    }
    let suite = ctx.world().profile.collectives;
    let all: Vec<usize> = (0..p).collect();
    match suite.bcast {
        BcastAlgo::Binomial => subgroup_binomial_bcast(ctx, &all, root, bytes, tag).await,
        BcastAlgo::ScatterAllgather => {
            if bytes >= suite.large_threshold && p.is_power_of_two() && p > 2 {
                scatter_allgather_bcast(ctx, root, bytes, tag).await;
            } else {
                subgroup_binomial_bcast(ctx, &all, root, bytes, tag).await;
            }
        }
        BcastAlgo::GridAware => {
            let multi_site = ctx.world().site_groups.len() > 1;
            if multi_site && bytes >= suite.large_threshold {
                grid_bcast(ctx, root, bytes, tag).await;
            } else if multi_site {
                // Topology-aware small-message bcast: site leaders first
                // (one WAN hop), then intra-site trees.
                grid_small_bcast(ctx, root, bytes, tag).await;
            } else {
                subgroup_binomial_bcast(ctx, &all, root, bytes, tag).await;
            }
        }
    }
}

/// Van de Geijn: binomial scatter + ring allgather, oblivious to sites.
/// Requires power-of-two world size (callers fall back otherwise).
async fn scatter_allgather_bcast(ctx: &mut RankCtx, root: usize, bytes: u64, tag: u64) {
    let p = ctx.size();
    let rank = ctx.rank();
    let vrank = (rank + p - root) % p;
    let real = |v: usize| (v + root) % p;
    // Binomial scatter: the holder of a 2·mask block forwards its upper
    // half.
    let mut mask = p >> 1;
    while mask >= 1 {
        if vrank.is_multiple_of(mask << 1) {
            let req = ctx
                .send_raw(real(vrank + mask), bytes * mask as u64 / p as u64, tag)
                .await;
            ctx.wait(req).await;
        } else if vrank % (mask << 1) == mask {
            ctx.recv(real(vrank - mask), tag).await;
        }
        if mask == 1 {
            break;
        }
        mask >>= 1;
    }
    // Ring allgather of the p chunks. In rank order the ring crosses the
    // WAN twice per lap — the grid pathology.
    let chunk = (bytes / p as u64).max(1);
    let right = real((vrank + 1) % p);
    let left = real((vrank + p - 1) % p);
    for _ in 0..p - 1 {
        let rr = ctx.irecv(left, tag);
        let sr = ctx.send_raw(right, chunk, tag).await;
        ctx.wait(rr).await;
        ctx.wait(sr).await;
    }
}

/// GridMPI small-message bcast: root → remote site leaders (parallel WAN),
/// then intra-site binomial trees.
async fn grid_small_bcast(ctx: &mut RankCtx, root: usize, bytes: u64, tag: u64) {
    let groups = ctx.world().site_groups.clone();
    let rank_site = ctx.world().rank_site.clone();
    let rank = ctx.rank();
    let my_site = rank_site[rank];
    let root_site = rank_site[root];
    // WAN fan-out to each remote site's leader.
    let mut reqs = Vec::new();
    for (si, group) in groups.iter().enumerate() {
        if si == root_site {
            continue;
        }
        if rank == root {
            reqs.push(ctx.send_raw(group[0], bytes, tag).await);
        } else if rank == group[0] {
            ctx.recv(root, tag).await;
        }
    }
    for r in reqs {
        ctx.wait(r).await;
    }
    // Intra-site trees.
    let local_root = if my_site == root_site {
        root
    } else {
        groups[my_site][0]
    };
    let group = groups[my_site].clone();
    subgroup_binomial_bcast(ctx, &group, local_root, bytes, tag).await;
}

/// GridMPI large-message bcast: intra-site bcast at the root site, then
/// chunk-parallel inter-site transfers over multiple node pairs, then
/// intra-site allgather at each remote site (Matsuda, Cluster'06).
async fn grid_bcast(ctx: &mut RankCtx, root: usize, bytes: u64, tag: u64) {
    let groups = ctx.world().site_groups.clone();
    let rank_site = ctx.world().rank_site.clone();
    let rank = ctx.rank();
    let my_site = rank_site[rank];
    let root_site = rank_site[root];
    let root_group = groups[root_site].clone();

    // Phase A: full data everywhere in the root site (cheap, LAN).
    if my_site == root_site {
        subgroup_binomial_bcast(ctx, &root_group, root, bytes, tag).await;
    }

    // Phase B: for each remote site, min(|root site|, |site|) parallel WAN
    // streams each carry one chunk.
    let mut reqs = Vec::new();
    for (si, group) in groups.iter().enumerate() {
        if si == root_site {
            continue;
        }
        let m = root_group.len().min(group.len());
        let chunk = (bytes / m as u64).max(1);
        if my_site == root_site {
            if let Some(i) = root_group.iter().position(|&g| g == rank) {
                if i < m {
                    reqs.push(ctx.send_raw(group[i], chunk, tag).await);
                }
            }
        } else if my_site == si {
            if let Some(i) = group.iter().position(|&g| g == rank) {
                if i < m {
                    ctx.recv(root_group[i], tag).await;
                }
            }
        }
    }
    for r in reqs {
        ctx.wait(r).await;
    }

    // Phase C: reassemble inside each remote site.
    if my_site != root_site {
        let group = groups[my_site].clone();
        let m = root_group.len().min(group.len());
        let chunk = (bytes / m as u64).max(1);
        let me_pos = group.iter().position(|&g| g == rank).expect("in group");
        if me_pos < m {
            let holders: Vec<usize> = group[..m].to_vec();
            subgroup_ring_allgather(ctx, &holders, chunk, tag).await;
        }
        // Ranks beyond the chunk holders get the full payload from the
        // local leader.
        if group.len() > m {
            if me_pos == 0 {
                let mut reqs = Vec::new();
                for &g in &group[m..] {
                    reqs.push(ctx.send_raw(g, bytes, tag).await);
                }
                for r in reqs {
                    ctx.wait(r).await;
                }
            } else if me_pos >= m {
                ctx.recv(group[0], tag).await;
            }
        }
    }
}

/// Global binomial reduce to `root`.
pub(crate) async fn reduce(ctx: &mut RankCtx, root: usize, bytes: u64, tag: u64) {
    let all: Vec<usize> = (0..ctx.size()).collect();
    subgroup_binomial_reduce(ctx, &all, root, bytes, tag).await;
}

/// `MPI_Allreduce` dispatch by implementation profile.
pub(crate) async fn allreduce(ctx: &mut RankCtx, bytes: u64, tag: u64) {
    use crate::profile::AllreduceAlgo;
    let p = ctx.size();
    if p <= 1 {
        return;
    }
    let suite = ctx.world().profile.collectives;
    match suite.allreduce {
        AllreduceAlgo::RecursiveDoubling => recursive_doubling_allreduce(ctx, bytes, tag).await,
        AllreduceAlgo::Rabenseifner => {
            if bytes >= suite.large_threshold && p.is_power_of_two() && p > 2 {
                rabenseifner_allreduce(ctx, bytes, tag).await;
            } else {
                recursive_doubling_allreduce(ctx, bytes, tag).await;
            }
        }
        AllreduceAlgo::GridAware => {
            // The GridMPI optimisation targets large payloads; small
            // reductions keep the default butterfly (Matsuda 2006).
            if ctx.world().site_groups.len() > 1 && bytes >= suite.large_threshold {
                grid_allreduce(ctx, bytes, tag).await;
            } else {
                recursive_doubling_allreduce(ctx, bytes, tag).await;
            }
        }
    }
}

async fn recursive_doubling_allreduce(ctx: &mut RankCtx, bytes: u64, tag: u64) {
    let p = ctx.size();
    let rank = ctx.rank();
    let p2 = prev_pow2(p);
    let extra = p - p2;
    if rank >= p2 {
        // Fold into the power-of-two core, then collect the result.
        let req = ctx.send_raw(rank - p2, bytes, tag).await;
        ctx.wait(req).await;
        ctx.recv(rank - p2, tag).await;
        return;
    }
    if rank < extra {
        ctx.recv(rank + p2, tag).await;
    }
    let mut mask = 1;
    while mask < p2 {
        let partner = rank ^ mask;
        ctx.sendrecv(partner, bytes, partner, tag).await;
        mask <<= 1;
    }
    if rank < extra {
        let req = ctx.send_raw(rank + p2, bytes, tag).await;
        ctx.wait(req).await;
    }
}

/// Rabenseifner: reduce-scatter (recursive halving) + allgather (recursive
/// doubling). Power-of-two world sizes only.
async fn rabenseifner_allreduce(ctx: &mut RankCtx, bytes: u64, tag: u64) {
    let p = ctx.size();
    let rank = ctx.rank();
    let lg = p.trailing_zeros();
    for k in 0..lg {
        let partner = rank ^ (1 << k);
        let size = (bytes >> (k + 1)).max(1);
        ctx.sendrecv(partner, size, partner, tag).await;
    }
    for k in (0..lg).rev() {
        let partner = rank ^ (1 << k);
        let size = (bytes >> (k + 1)).max(1);
        ctx.sendrecv(partner, size, partner, tag).await;
    }
}

/// GridMPI hierarchical allreduce (Matsuda, Cluster'06). For equal
/// power-of-two site groups: reduce-scatter within each site, exchange
/// only the owned chunk with the counterpart rank of every other site
/// (parallel WAN streams), then allgather within the site. Falls back to
/// a leader-based tree for irregular layouts or tiny payloads.
async fn grid_allreduce(ctx: &mut RankCtx, bytes: u64, tag: u64) {
    let groups = ctx.world().site_groups.clone();
    let rank_site = ctx.world().rank_site.clone();
    let rank = ctx.rank();
    let my_site = rank_site[rank];
    let group = groups[my_site].clone();
    let k = group.len();
    let regular = groups.iter().all(|g| g.len() == k) && k.is_power_of_two() && k > 1;

    if !regular || bytes < 4096 {
        // Leader-based: intra-site reduce, leader exchange, intra-site
        // bcast.
        let leader = group[0];
        subgroup_binomial_reduce(ctx, &group, leader, bytes, tag).await;
        if rank == leader {
            let mut reqs = Vec::new();
            for (si, g) in groups.iter().enumerate() {
                if si != my_site {
                    reqs.push(ctx.send_raw(g[0], bytes, tag).await);
                }
            }
            for (si, g) in groups.iter().enumerate() {
                if si != my_site {
                    ctx.recv(g[0], tag).await;
                }
            }
            for r in reqs {
                ctx.wait(r).await;
            }
        }
        subgroup_binomial_bcast(ctx, &group, leader, bytes, tag).await;
        return;
    }

    let pos = group.iter().position(|&g| g == rank).expect("in group");
    // Phase A: intra-site reduce-scatter (recursive halving).
    let lg = k.trailing_zeros();
    for j in 0..lg {
        let partner = group[pos ^ (1 << j)];
        let size = (bytes >> (j + 1)).max(1);
        ctx.sendrecv(partner, size, partner, tag).await;
    }
    let chunk = (bytes / k as u64).max(1);
    // Phase B: chunk exchange with the counterpart rank of each remote
    // site — many parallel node-to-node WAN streams, the Matsuda insight.
    let mut reqs = Vec::new();
    for (si, g) in groups.iter().enumerate() {
        if si != my_site {
            reqs.push(ctx.irecv(g[pos], tag));
        }
    }
    for (si, g) in groups.iter().enumerate() {
        if si != my_site {
            reqs.push(ctx.send_raw(g[pos], chunk, tag).await);
        }
    }
    ctx.waitall(reqs).await;
    // Phase C: intra-site allgather of the reduced chunks.
    subgroup_ring_allgather(ctx, &group, chunk, tag).await;
}

/// Ring allgather over the whole world.
pub(crate) async fn ring_allgather(ctx: &mut RankCtx, bytes_each: u64, tag: u64) {
    let all: Vec<usize> = (0..ctx.size()).collect();
    subgroup_ring_allgather(ctx, &all, bytes_each, tag).await;
}

/// Pairwise-exchange alltoall(v): `p - 1` rounds; in round `k` rank `r`
/// sends to `r + k` and receives from `r - k`.
pub(crate) async fn alltoallv(ctx: &mut RankCtx, send_sizes: &[u64], tag: u64) {
    let p = ctx.size();
    let r = ctx.rank();
    if p <= 1 {
        return;
    }
    let mut recvs = Vec::with_capacity(p - 1);
    for k in 1..p {
        let from = (r + p - k) % p;
        recvs.push(ctx.irecv(from, tag));
    }
    let mut sends = Vec::with_capacity(p - 1);
    for k in 1..p {
        let to = (r + k) % p;
        sends.push(ctx.send_raw(to, send_sizes[to].max(1), tag).await);
    }
    ctx.waitall(recvs).await;
    ctx.waitall(sends).await;
}

/// Linear gather to `root`.
pub(crate) async fn gather(ctx: &mut RankCtx, root: usize, bytes_each: u64, tag: u64) {
    let p = ctx.size();
    let r = ctx.rank();
    if r == root {
        for k in 0..p {
            if k != root {
                ctx.recv(k, tag).await;
            }
        }
    } else {
        let req = ctx.send_raw(root, bytes_each, tag).await;
        ctx.wait(req).await;
    }
}

/// Linear scatter from `root`.
pub(crate) async fn scatter(ctx: &mut RankCtx, root: usize, bytes_each: u64, tag: u64) {
    let p = ctx.size();
    let r = ctx.rank();
    if r == root {
        let mut reqs = Vec::new();
        for k in 0..p {
            if k != root {
                reqs.push(ctx.send_raw(k, bytes_each, tag).await);
            }
        }
        for req in reqs {
            ctx.wait(req).await;
        }
    } else {
        ctx.recv(root, tag).await;
    }
}
