//! Collective-operation algorithms.
//!
//! Three families, matching §2.1 of the paper:
//!
//! * **Binomial / recursive doubling** — the MPICH-1-era defaults
//!   (MPICH-Madeleine).
//! * **Scatter + ring allgather** (Van de Geijn) and **Rabenseifner** for
//!   large messages — the MPICH2/OpenMPI defaults. These are
//!   topology-*oblivious*: their ring and butterfly steps cross the WAN
//!   over and over, which is what makes FT and IS so slow on the grid for
//!   the non-grid-aware implementations (Fig. 10).
//! * **Grid-aware hierarchical** algorithms (GridMPI, after Matsuda et al.,
//!   Cluster'06): intra-site trees plus one set of *parallel* inter-site
//!   transfers, exploiting the fact that the WAN backbone is faster than a
//!   single node's NIC.

use crate::rank::RankCtx;

/// Collective operation kinds. Each kind owns an independent per-rank
/// sequence counter (see `RankCtx::coll_seq`) and a distinct tag
/// namespace, so two overlapping collectives of *different* ops running
/// on disjoint subgroups can never mint colliding tags — and ranks whose
/// op mix differs across subgroups still agree on the sequence number of
/// any op they later meet in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CollOp {
    /// `MPI_Barrier`.
    Barrier = 0,
    /// `MPI_Bcast`.
    Bcast = 1,
    /// `MPI_Reduce`.
    Reduce = 2,
    /// `MPI_Allreduce`.
    Allreduce = 3,
    /// `MPI_Allgather`.
    Allgather = 4,
    /// `MPI_Alltoall` / `MPI_Alltoallv`.
    Alltoall = 5,
    /// `MPI_Gather`.
    Gather = 6,
    /// `MPI_Scatter`.
    Scatter = 7,
}

impl CollOp {
    /// Number of op kinds (sizes the per-rank sequence-counter array).
    pub const COUNT: usize = 8;

    /// The ops whose algorithm can be pinned through [`CollConfig`].
    pub const PINNABLE: [CollOp; 5] = [
        CollOp::Bcast,
        CollOp::Reduce,
        CollOp::Allreduce,
        CollOp::Allgather,
        CollOp::Alltoall,
    ];

    /// Map the operation label used by `RankCtx::coll` (including the
    /// `comm_*` sub-communicator labels) to its kind.
    pub(crate) fn from_name(op: &str) -> CollOp {
        match op {
            "barrier" | "comm_barrier" => CollOp::Barrier,
            "bcast" | "comm_bcast" => CollOp::Bcast,
            "reduce" | "comm_reduce" => CollOp::Reduce,
            "allreduce" | "comm_allreduce" => CollOp::Allreduce,
            "allgather" | "comm_allgather" => CollOp::Allgather,
            "alltoall" | "alltoallv" => CollOp::Alltoall,
            "gather" => CollOp::Gather,
            "scatter" => CollOp::Scatter,
            _ => CollOp::Barrier,
        }
    }

    /// Row of this op in [`CollConfig`]'s selection table.
    fn pin_index(self) -> Option<usize> {
        match self {
            CollOp::Bcast => Some(0),
            CollOp::Reduce => Some(1),
            CollOp::Allreduce => Some(2),
            CollOp::Allgather => Some(3),
            CollOp::Alltoall => Some(4),
            _ => None,
        }
    }
}

/// Tag namespace for collective traffic (clear of application tags):
/// bit 62 marks the collective namespace, bits 56..59 carry the op kind,
/// and the low bits the per-rank per-op sequence number.
pub(crate) fn coll_tag(op: CollOp, seq: u64) -> u64 {
    (1 << 62) | ((op as u64) << 56) | seq
}

/// A selectable collective algorithm (the OpenMPI `tuned`-module family
/// plus the grid-aware building blocks already modelled). Not every
/// algorithm applies to every op: a pin that makes no sense for the op
/// (or needs a power-of-two group it does not have) degrades to the
/// nearest applicable algorithm — see `algo_bcast` and friends — so a
/// pinned scenario can never deadlock on a shape mismatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CollAlgo {
    /// Keep the implementation profile's own dispatch (the default; leaves
    /// every existing scenario bit-identical).
    #[default]
    ProfileDefault,
    /// Root sends to every rank directly (bcast/reduce/alltoall).
    Linear,
    /// Single chain through the ranks in rotated order.
    Chain,
    /// Segmented chain: `segment_bytes` chunks pipelined down the chain.
    Pipeline,
    /// Balanced binary tree (children `2v+1`, `2v+2`).
    Binary,
    /// In-order binary tree: children own contiguous rank ranges.
    InOrderBinary,
    /// Binomial tree (the MPICH-1-era default).
    Binomial,
    /// Van de Geijn scatter + ring allgather (large-message bcast).
    ScatterAllgather,
    /// Ring: reduce-scatter + allgather rings (allreduce/allgather).
    Ring,
    /// Recursive doubling butterfly.
    RecursiveDoubling,
    /// Rabenseifner: recursive halving + recursive doubling.
    Rabenseifner,
    /// Pairwise exchange (alltoall).
    Pairwise,
}

impl CollAlgo {
    /// Short stable label (decision tables, bench names, CLI).
    pub fn name(self) -> &'static str {
        match self {
            CollAlgo::ProfileDefault => "profile",
            CollAlgo::Linear => "linear",
            CollAlgo::Chain => "chain",
            CollAlgo::Pipeline => "pipeline",
            CollAlgo::Binary => "binary",
            CollAlgo::InOrderBinary => "inorder_binary",
            CollAlgo::Binomial => "binomial",
            CollAlgo::ScatterAllgather => "scatter_allgather",
            CollAlgo::Ring => "ring",
            CollAlgo::RecursiveDoubling => "recursive_doubling",
            CollAlgo::Rabenseifner => "rabenseifner",
            CollAlgo::Pairwise => "pairwise",
        }
    }
}

/// One selection: an algorithm plus whether to run it hierarchically
/// (intra-site phases + one inter-site phase over per-site leaders).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CollSel {
    /// The algorithm (inter-site phase when `two_level`).
    pub algo: CollAlgo,
    /// Run the two-level grid variant on multi-site topologies.
    pub two_level: bool,
}

impl CollSel {
    /// Flat (topology-oblivious) selection.
    pub fn flat(algo: CollAlgo) -> CollSel {
        CollSel {
            algo,
            two_level: false,
        }
    }

    /// Two-level (intra-site + inter-site) selection.
    pub fn two_level(algo: CollAlgo) -> CollSel {
        CollSel {
            algo,
            two_level: true,
        }
    }
}

/// Message-size classes for per-(op × size) pinning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SizeClass {
    /// `bytes < small_max`.
    Small = 0,
    /// `small_max ≤ bytes < large_min`.
    Medium = 1,
    /// `bytes ≥ large_min`.
    Large = 2,
}

impl SizeClass {
    /// All classes, ascending.
    pub const ALL: [SizeClass; 3] = [SizeClass::Small, SizeClass::Medium, SizeClass::Large];

    /// Stable label (decision tables).
    pub fn name(self) -> &'static str {
        match self {
            SizeClass::Small => "small",
            SizeClass::Medium => "medium",
            SizeClass::Large => "large",
        }
    }
}

/// Per-(op × size class) algorithm selection table, threaded through
/// [`crate::ExecConfig`] so any scenario can pin collective algorithms.
/// The default table is all-[`CollAlgo::ProfileDefault`]: behaviour (and
/// every golden digest) is bit-identical to the un-pinned simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollConfig {
    /// Exclusive upper bound of the [`SizeClass::Small`] class.
    pub small_max: u64,
    /// Inclusive lower bound of the [`SizeClass::Large`] class.
    pub large_min: u64,
    /// Segment size used by [`CollAlgo::Pipeline`].
    pub segment_bytes: u64,
    /// `sel[op.pin_index()][size_class]`.
    sel: [[CollSel; 3]; 5],
}

impl Default for CollConfig {
    fn default() -> CollConfig {
        CollConfig {
            small_max: 8 << 10,
            large_min: 512 << 10,
            segment_bytes: 64 << 10,
            sel: [[CollSel::default(); 3]; 5],
        }
    }
}

impl CollConfig {
    /// The all-default table (profile dispatch for every op and size).
    pub fn new() -> CollConfig {
        CollConfig::default()
    }

    /// The size class `bytes` falls in.
    pub fn size_class(&self, bytes: u64) -> SizeClass {
        if bytes < self.small_max {
            SizeClass::Small
        } else if bytes < self.large_min {
            SizeClass::Medium
        } else {
            SizeClass::Large
        }
    }

    /// Pin `op` at `class` to `sel`. Pins on non-pinnable ops (barrier,
    /// gather, scatter) are ignored.
    pub fn pin(mut self, op: CollOp, class: SizeClass, sel: CollSel) -> CollConfig {
        if let Some(i) = op.pin_index() {
            self.sel[i][class as usize] = sel;
        }
        self
    }

    /// Pin `op` to `sel` for every size class.
    pub fn pin_all(mut self, op: CollOp, sel: CollSel) -> CollConfig {
        for class in SizeClass::ALL {
            self = self.pin(op, class, sel);
        }
        self
    }

    /// Override the pipeline segment size.
    pub fn segment(mut self, bytes: u64) -> CollConfig {
        self.segment_bytes = bytes.max(1);
        self
    }

    /// The selection in force for `op` at `bytes`.
    pub fn select(&self, op: CollOp, bytes: u64) -> CollSel {
        match op.pin_index() {
            Some(i) => self.sel[i][self.size_class(bytes) as usize],
            None => CollSel::default(),
        }
    }
}

fn prev_pow2(n: usize) -> usize {
    let mut p = 1;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

fn pos_in(group: &[usize], rank: usize) -> usize {
    group
        .iter()
        .position(|&g| g == rank)
        .expect("caller is in group")
}

/// Parent and children of vrank `v` in the in-order (range-splitting)
/// binary tree over `0..p`: the root of a range owns its first vrank,
/// and each child subtree owns a contiguous vrank range.
fn inorder_tree(p: usize, v: usize) -> (Option<usize>, Vec<usize>) {
    let (mut lo, mut hi, mut parent) = (0usize, p, None);
    loop {
        let rest = hi - lo - 1;
        let mid = lo + 1 + rest / 2;
        if v == lo {
            let mut children = Vec::new();
            if lo + 1 < mid {
                children.push(lo + 1);
            }
            if mid < hi {
                children.push(mid);
            }
            return (parent, children);
        }
        parent = Some(lo);
        if v < mid {
            lo += 1;
            hi = mid;
        } else {
            lo = mid;
        }
    }
}

/// Linear (flat-tree) broadcast: the root sends the full payload to every
/// other rank directly.
async fn subgroup_linear_bcast(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    if group.len() <= 1 {
        return;
    }
    if ctx.rank() == root {
        let mut reqs = Vec::new();
        for &g in group {
            if g != root {
                reqs.push(ctx.send_raw(g, bytes, tag).await);
            }
        }
        for r in reqs {
            ctx.wait(r).await;
        }
    } else {
        ctx.recv(root, tag).await;
    }
}

/// Chain broadcast: one store-and-forward chain in rotated rank order.
async fn subgroup_chain_bcast(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = pos_in(group, ctx.rank());
    let rootpos = pos_in(group, root);
    let vrank = (me + p - rootpos) % p;
    let real = |v: usize| group[(v + rootpos) % p];
    if vrank > 0 {
        ctx.recv(real(vrank - 1), tag).await;
    }
    if vrank + 1 < p {
        let r = ctx.send_raw(real(vrank + 1), bytes, tag).await;
        ctx.wait(r).await;
    }
}

/// Pipelined (segmented) chain broadcast: `segment`-byte chunks overlap
/// down the chain, hiding per-hop latency for large payloads.
async fn subgroup_pipeline_bcast(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
    segment: u64,
) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = pos_in(group, ctx.rank());
    let rootpos = pos_in(group, root);
    let vrank = (me + p - rootpos) % p;
    let real = |v: usize| group[(v + rootpos) % p];
    let seg = segment.max(1);
    let nseg = bytes.div_ceil(seg).max(1);
    let mut reqs = Vec::new();
    for s in 0..nseg {
        let sz = if s + 1 == nseg {
            (bytes - seg * (nseg - 1)).max(1)
        } else {
            seg
        };
        if vrank > 0 {
            ctx.recv(real(vrank - 1), tag).await;
        }
        if vrank + 1 < p {
            reqs.push(ctx.send_raw(real(vrank + 1), sz, tag).await);
        }
    }
    for r in reqs {
        ctx.wait(r).await;
    }
}

/// Balanced-binary-tree broadcast (children `2v+1`, `2v+2` in vrank
/// space).
async fn subgroup_binary_bcast(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = pos_in(group, ctx.rank());
    let rootpos = pos_in(group, root);
    let vrank = (me + p - rootpos) % p;
    let real = |v: usize| group[(v + rootpos) % p];
    if vrank > 0 {
        ctx.recv(real((vrank - 1) / 2), tag).await;
    }
    let mut reqs = Vec::new();
    for c in [2 * vrank + 1, 2 * vrank + 2] {
        if c < p {
            reqs.push(ctx.send_raw(real(c), bytes, tag).await);
        }
    }
    for r in reqs {
        ctx.wait(r).await;
    }
}

/// In-order binary-tree broadcast (children own contiguous vrank ranges —
/// the shape OpenMPI uses for non-commutative reductions).
async fn subgroup_inorder_bcast(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = pos_in(group, ctx.rank());
    let rootpos = pos_in(group, root);
    let vrank = (me + p - rootpos) % p;
    let real = |v: usize| group[(v + rootpos) % p];
    let (parent, children) = inorder_tree(p, vrank);
    if let Some(par) = parent {
        ctx.recv(real(par), tag).await;
    }
    let mut reqs = Vec::new();
    for c in children {
        reqs.push(ctx.send_raw(real(c), bytes, tag).await);
    }
    for r in reqs {
        ctx.wait(r).await;
    }
}

/// Linear reduce: every rank sends its contribution straight to the root.
async fn subgroup_linear_reduce(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    if group.len() <= 1 {
        return;
    }
    if ctx.rank() == root {
        for &g in group {
            if g != root {
                ctx.recv(g, tag).await;
            }
        }
    } else {
        let r = ctx.send_raw(root, bytes, tag).await;
        ctx.wait(r).await;
    }
}

/// Chain reduce: partial results flow down the chain towards the root.
async fn subgroup_chain_reduce(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = pos_in(group, ctx.rank());
    let rootpos = pos_in(group, root);
    let vrank = (me + p - rootpos) % p;
    let real = |v: usize| group[(v + rootpos) % p];
    if vrank + 1 < p {
        ctx.recv(real(vrank + 1), tag).await;
    }
    if vrank > 0 {
        let r = ctx.send_raw(real(vrank - 1), bytes, tag).await;
        ctx.wait(r).await;
    }
}

/// Pipelined (segmented) chain reduce.
async fn subgroup_pipeline_reduce(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
    segment: u64,
) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = pos_in(group, ctx.rank());
    let rootpos = pos_in(group, root);
    let vrank = (me + p - rootpos) % p;
    let real = |v: usize| group[(v + rootpos) % p];
    let seg = segment.max(1);
    let nseg = bytes.div_ceil(seg).max(1);
    let mut reqs = Vec::new();
    for s in 0..nseg {
        let sz = if s + 1 == nseg {
            (bytes - seg * (nseg - 1)).max(1)
        } else {
            seg
        };
        if vrank + 1 < p {
            ctx.recv(real(vrank + 1), tag).await;
        }
        if vrank > 0 {
            reqs.push(ctx.send_raw(real(vrank - 1), sz, tag).await);
        }
    }
    for r in reqs {
        ctx.wait(r).await;
    }
}

/// Balanced-binary-tree reduce.
async fn subgroup_binary_reduce(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = pos_in(group, ctx.rank());
    let rootpos = pos_in(group, root);
    let vrank = (me + p - rootpos) % p;
    let real = |v: usize| group[(v + rootpos) % p];
    for c in [2 * vrank + 1, 2 * vrank + 2] {
        if c < p {
            ctx.recv(real(c), tag).await;
        }
    }
    if vrank > 0 {
        let r = ctx.send_raw(real((vrank - 1) / 2), bytes, tag).await;
        ctx.wait(r).await;
    }
}

/// In-order binary-tree reduce.
async fn subgroup_inorder_reduce(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = pos_in(group, ctx.rank());
    let rootpos = pos_in(group, root);
    let vrank = (me + p - rootpos) % p;
    let real = |v: usize| group[(v + rootpos) % p];
    let (parent, children) = inorder_tree(p, vrank);
    for c in children {
        ctx.recv(real(c), tag).await;
    }
    if let Some(par) = parent {
        let r = ctx.send_raw(real(par), bytes, tag).await;
        ctx.wait(r).await;
    }
}

/// Van de Geijn scatter+allgather broadcast over a subgroup (power-of-two
/// group sizes; callers fall back to binomial otherwise).
async fn subgroup_vdg_bcast(ctx: &mut RankCtx, group: &[usize], root: usize, bytes: u64, tag: u64) {
    let p = group.len();
    let me = pos_in(group, ctx.rank());
    let rootpos = pos_in(group, root);
    let vrank = (me + p - rootpos) % p;
    let real = |v: usize| group[(v + rootpos) % p];
    let mut mask = p >> 1;
    while mask >= 1 {
        if vrank.is_multiple_of(mask << 1) {
            let req = ctx
                .send_raw(real(vrank + mask), bytes * mask as u64 / p as u64, tag)
                .await;
            ctx.wait(req).await;
        } else if vrank % (mask << 1) == mask {
            ctx.recv(real(vrank - mask), tag).await;
        }
        if mask == 1 {
            break;
        }
        mask >>= 1;
    }
    let chunk = (bytes / p as u64).max(1);
    let right = real((vrank + 1) % p);
    let left = real((vrank + p - 1) % p);
    for _ in 0..p - 1 {
        let rr = ctx.irecv(left, tag);
        let sr = ctx.send_raw(right, chunk, tag).await;
        ctx.wait(rr).await;
        ctx.wait(sr).await;
    }
}

/// Ring allreduce: reduce-scatter ring + allgather ring, `2(p-1)` rounds
/// of `bytes/p` chunks.
async fn subgroup_ring_allreduce(ctx: &mut RankCtx, group: &[usize], bytes: u64, tag: u64) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let chunk = (bytes / p as u64).max(1);
    // Both phases move the same chunks around the same ring.
    subgroup_ring_allgather(ctx, group, chunk, tag).await;
    subgroup_ring_allgather(ctx, group, chunk, tag).await;
}

/// Rabenseifner allreduce over a subgroup (power-of-two sizes; callers
/// fall back to recursive doubling otherwise).
async fn subgroup_rabenseifner_allreduce(ctx: &mut RankCtx, group: &[usize], bytes: u64, tag: u64) {
    let p = group.len();
    let me = pos_in(group, ctx.rank());
    let lg = p.trailing_zeros();
    for k in 0..lg {
        let partner = group[me ^ (1 << k)];
        let size = (bytes >> (k + 1)).max(1);
        ctx.sendrecv(partner, size, partner, tag).await;
    }
    for k in (0..lg).rev() {
        let partner = group[me ^ (1 << k)];
        let size = (bytes >> (k + 1)).max(1);
        ctx.sendrecv(partner, size, partner, tag).await;
    }
}

/// Recursive-doubling allgather (power-of-two sizes; callers fall back to
/// the ring otherwise): round `k` exchanges `2^k` accumulated blocks.
async fn subgroup_rd_allgather(ctx: &mut RankCtx, group: &[usize], bytes_each: u64, tag: u64) {
    let p = group.len();
    let me = pos_in(group, ctx.rank());
    let lg = p.trailing_zeros();
    for k in 0..lg {
        let partner = group[me ^ (1 << k)];
        let size = (bytes_each << k).max(1);
        ctx.sendrecv(partner, size, partner, tag).await;
    }
}

/// Pairwise-exchange alltoall over a subgroup with a uniform payload.
async fn subgroup_pairwise_alltoall(ctx: &mut RankCtx, group: &[usize], bytes: u64, tag: u64) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = pos_in(group, ctx.rank());
    let mut recvs = Vec::with_capacity(p - 1);
    for k in 1..p {
        recvs.push(ctx.irecv(group[(me + p - k) % p], tag));
    }
    let mut sends = Vec::with_capacity(p - 1);
    for k in 1..p {
        sends.push(ctx.send_raw(group[(me + k) % p], bytes.max(1), tag).await);
    }
    ctx.waitall(recvs).await;
    ctx.waitall(sends).await;
}

/// Linear alltoallv: post every receive, then every send, then drain.
async fn linear_alltoallv(ctx: &mut RankCtx, send_sizes: &[u64], tag: u64) {
    let p = ctx.size();
    let r = ctx.rank();
    let mut recvs = Vec::with_capacity(p - 1);
    for k in 0..p {
        if k != r {
            recvs.push(ctx.irecv(k, tag));
        }
    }
    let mut sends = Vec::with_capacity(p - 1);
    for (k, &sz) in send_sizes.iter().enumerate() {
        if k != r {
            sends.push(ctx.send_raw(k, sz.max(1), tag).await);
        }
    }
    ctx.waitall(recvs).await;
    ctx.waitall(sends).await;
}

/// Run the pinned broadcast algorithm over `group` (flat). Shape-infeasible
/// pins degrade: ScatterAllgather needs a power-of-two group larger than 2,
/// and selections that only make sense for other ops fall back to binomial.
async fn algo_bcast(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
    algo: CollAlgo,
) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let segment = ctx.world().coll.segment_bytes;
    match algo {
        CollAlgo::Linear => subgroup_linear_bcast(ctx, group, root, bytes, tag).await,
        CollAlgo::Chain => subgroup_chain_bcast(ctx, group, root, bytes, tag).await,
        CollAlgo::Pipeline => subgroup_pipeline_bcast(ctx, group, root, bytes, tag, segment).await,
        CollAlgo::Binary => subgroup_binary_bcast(ctx, group, root, bytes, tag).await,
        CollAlgo::InOrderBinary => subgroup_inorder_bcast(ctx, group, root, bytes, tag).await,
        CollAlgo::ScatterAllgather if p.is_power_of_two() && p > 2 => {
            subgroup_vdg_bcast(ctx, group, root, bytes, tag).await
        }
        _ => subgroup_binomial_bcast(ctx, group, root, bytes, tag).await,
    }
}

/// Run the pinned reduce algorithm over `group` (flat).
async fn algo_reduce(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
    algo: CollAlgo,
) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let segment = ctx.world().coll.segment_bytes;
    match algo {
        CollAlgo::Linear => subgroup_linear_reduce(ctx, group, root, bytes, tag).await,
        CollAlgo::Chain => subgroup_chain_reduce(ctx, group, root, bytes, tag).await,
        CollAlgo::Pipeline => subgroup_pipeline_reduce(ctx, group, root, bytes, tag, segment).await,
        CollAlgo::Binary => subgroup_binary_reduce(ctx, group, root, bytes, tag).await,
        CollAlgo::InOrderBinary => subgroup_inorder_reduce(ctx, group, root, bytes, tag).await,
        _ => subgroup_binomial_reduce(ctx, group, root, bytes, tag).await,
    }
}

/// Run the pinned allreduce algorithm over `group` (flat). Tree-family
/// pins compose as reduce-to-first + bcast with the same tree shape.
async fn algo_allreduce(ctx: &mut RankCtx, group: &[usize], bytes: u64, tag: u64, algo: CollAlgo) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    match algo {
        CollAlgo::Ring | CollAlgo::Pairwise => {
            subgroup_ring_allreduce(ctx, group, bytes, tag).await
        }
        CollAlgo::RecursiveDoubling => subgroup_allreduce(ctx, group, bytes, tag).await,
        CollAlgo::Rabenseifner | CollAlgo::ScatterAllgather => {
            if p.is_power_of_two() && p > 1 {
                subgroup_rabenseifner_allreduce(ctx, group, bytes, tag).await
            } else {
                subgroup_allreduce(ctx, group, bytes, tag).await
            }
        }
        tree => {
            algo_reduce(ctx, group, group[0], bytes, tag, tree).await;
            algo_bcast(ctx, group, group[0], bytes, tag, tree).await;
        }
    }
}

/// Run the pinned allgather algorithm over `group` (flat).
async fn algo_allgather(
    ctx: &mut RankCtx,
    group: &[usize],
    bytes_each: u64,
    tag: u64,
    algo: CollAlgo,
) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    match algo {
        CollAlgo::RecursiveDoubling | CollAlgo::Rabenseifner if p.is_power_of_two() => {
            subgroup_rd_allgather(ctx, group, bytes_each, tag).await
        }
        _ => subgroup_ring_allgather(ctx, group, bytes_each, tag).await,
    }
}

/// Per-site leaders, with `root` (when given) standing in for its own
/// site's leader so rooted two-level collectives need no extra hop.
fn leaders_of(groups: &[Vec<usize>], rank_site: &[usize], root: Option<usize>) -> Vec<usize> {
    groups
        .iter()
        .enumerate()
        .map(|(si, g)| match root {
            Some(r) if rank_site[r] == si => r,
            _ => g[0],
        })
        .collect()
}

/// Two-level broadcast: `algo` over the per-site leaders (WAN phase),
/// then `algo` inside each site.
async fn two_level_bcast(ctx: &mut RankCtx, root: usize, bytes: u64, tag: u64, algo: CollAlgo) {
    let groups = ctx.world().site_groups.clone();
    let rank_site = ctx.world().rank_site.clone();
    let rank = ctx.rank();
    let my_site = rank_site[rank];
    let leaders = leaders_of(&groups, &rank_site, Some(root));
    if leaders.contains(&rank) {
        algo_bcast(ctx, &leaders, root, bytes, tag, algo).await;
    }
    let group = groups[my_site].clone();
    algo_bcast(ctx, &group, leaders[my_site], bytes, tag, algo).await;
}

/// Two-level reduce: `algo` inside each site towards its leader, then
/// `algo` over the leaders towards the root.
async fn two_level_reduce(ctx: &mut RankCtx, root: usize, bytes: u64, tag: u64, algo: CollAlgo) {
    let groups = ctx.world().site_groups.clone();
    let rank_site = ctx.world().rank_site.clone();
    let rank = ctx.rank();
    let my_site = rank_site[rank];
    let leaders = leaders_of(&groups, &rank_site, Some(root));
    let group = groups[my_site].clone();
    algo_reduce(ctx, &group, leaders[my_site], bytes, tag, algo).await;
    if leaders.contains(&rank) {
        algo_reduce(ctx, &leaders, root, bytes, tag, algo).await;
    }
}

/// Two-level allreduce: binomial intra-site reduce, `algo` allreduce over
/// the leaders, binomial intra-site bcast.
async fn two_level_allreduce(ctx: &mut RankCtx, bytes: u64, tag: u64, algo: CollAlgo) {
    let groups = ctx.world().site_groups.clone();
    let rank_site = ctx.world().rank_site.clone();
    let rank = ctx.rank();
    let my_site = rank_site[rank];
    let leaders = leaders_of(&groups, &rank_site, None);
    let group = groups[my_site].clone();
    subgroup_binomial_reduce(ctx, &group, group[0], bytes, tag).await;
    if rank == group[0] {
        algo_allreduce(ctx, &leaders, bytes, tag, algo).await;
    }
    subgroup_binomial_bcast(ctx, &group, group[0], bytes, tag).await;
}

/// Two-level allgather: intra-site allgather, leaders exchange aggregated
/// site blocks over parallel WAN streams, leader rebroadcasts the remote
/// total inside the site.
async fn two_level_allgather(ctx: &mut RankCtx, bytes_each: u64, tag: u64, algo: CollAlgo) {
    let groups = ctx.world().site_groups.clone();
    let rank_site = ctx.world().rank_site.clone();
    let rank = ctx.rank();
    let my_site = rank_site[rank];
    let group = groups[my_site].clone();
    algo_allgather(ctx, &group, bytes_each, tag, algo).await;
    if rank == group[0] {
        let mut reqs = Vec::new();
        for (si, g) in groups.iter().enumerate() {
            if si != my_site {
                reqs.push(ctx.irecv(g[0], tag));
            }
        }
        let block = (bytes_each * group.len() as u64).max(1);
        for (si, g) in groups.iter().enumerate() {
            if si != my_site {
                reqs.push(ctx.send_raw(g[0], block, tag).await);
            }
        }
        ctx.waitall(reqs).await;
    }
    let remote: u64 = groups
        .iter()
        .enumerate()
        .filter(|(si, _)| *si != my_site)
        .map(|(_, g)| bytes_each * g.len() as u64)
        .sum();
    if remote > 0 && group.len() > 1 {
        subgroup_binomial_bcast(ctx, &group, group[0], remote, tag).await;
    }
}

/// Two-level alltoall (uniform payload): funnel off-site payloads to the
/// site leader, leaders exchange aggregated site-to-site blocks, leaders
/// deliver inbound payloads, then an intra-site pairwise exchange.
async fn two_level_alltoall(ctx: &mut RankCtx, bytes: u64, tag: u64) {
    let groups = ctx.world().site_groups.clone();
    let rank_site = ctx.world().rank_site.clone();
    let rank = ctx.rank();
    let p = ctx.size();
    let my_site = rank_site[rank];
    let group = groups[my_site].clone();
    let leader = group[0];
    let off_site = (p - group.len()) as u64 * bytes;
    if off_site > 0 && group.len() > 1 {
        if rank == leader {
            for &g in &group[1..] {
                ctx.recv(g, tag).await;
            }
        } else {
            let r = ctx.send_raw(leader, off_site, tag).await;
            ctx.wait(r).await;
        }
    }
    if rank == leader && groups.len() > 1 {
        let mut reqs = Vec::new();
        for (si, g) in groups.iter().enumerate() {
            if si != my_site {
                reqs.push(ctx.irecv(g[0], tag));
            }
        }
        for (si, g) in groups.iter().enumerate() {
            if si != my_site {
                let block = (bytes * group.len() as u64 * g.len() as u64).max(1);
                reqs.push(ctx.send_raw(g[0], block, tag).await);
            }
        }
        ctx.waitall(reqs).await;
    }
    if off_site > 0 && group.len() > 1 {
        if rank == leader {
            let mut reqs = Vec::new();
            for &g in &group[1..] {
                reqs.push(ctx.send_raw(g, off_site, tag).await);
            }
            for r in reqs {
                ctx.wait(r).await;
            }
        } else {
            ctx.recv(leader, tag).await;
        }
    }
    subgroup_pairwise_alltoall(ctx, &group, bytes, tag).await;
}

/// Dissemination barrier: ⌈log₂ p⌉ rounds of 1-byte messages.
pub(crate) async fn barrier(ctx: &mut RankCtx, tag: u64) {
    let p = ctx.size();
    let r = ctx.rank();
    let mut k = 1;
    while k < p {
        let to = (r + k) % p;
        let from = (r + p - k) % p;
        let req = ctx.send_raw(to, 1, tag).await;
        ctx.recv(from, tag).await;
        ctx.wait(req).await;
        k <<= 1;
    }
}

/// Binomial-tree broadcast over an arbitrary rank subgroup.
async fn subgroup_binomial_bcast(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = group
        .iter()
        .position(|&g| g == ctx.rank())
        .expect("caller is in group");
    let rootpos = group
        .iter()
        .position(|&g| g == root)
        .expect("root is in group");
    let vrank = (me + p - rootpos) % p;
    let real = |v: usize| group[(v + rootpos) % p];
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            ctx.recv(real(vrank - mask), tag).await;
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    let mut reqs = Vec::new();
    while mask > 0 {
        if vrank + mask < p {
            reqs.push(ctx.send_raw(real(vrank + mask), bytes, tag).await);
        }
        mask >>= 1;
    }
    for r in reqs {
        ctx.wait(r).await;
    }
}

/// Binomial-tree reduce over an arbitrary rank subgroup.
async fn subgroup_binomial_reduce(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = group
        .iter()
        .position(|&g| g == ctx.rank())
        .expect("caller is in group");
    let rootpos = group
        .iter()
        .position(|&g| g == root)
        .expect("root is in group");
    let vrank = (me + p - rootpos) % p;
    let real = |v: usize| group[(v + rootpos) % p];
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            let req = ctx.send_raw(real(vrank - mask), bytes, tag).await;
            ctx.wait(req).await;
            break;
        }
        if vrank + mask < p {
            ctx.recv(real(vrank + mask), tag).await;
        }
        mask <<= 1;
    }
}

/// Ring allgather over a subgroup: `steps = |group| - 1` rounds of
/// `chunk` bytes to the right neighbour.
async fn subgroup_ring_allgather(ctx: &mut RankCtx, group: &[usize], chunk: u64, tag: u64) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = group
        .iter()
        .position(|&g| g == ctx.rank())
        .expect("caller is in group");
    let right = group[(me + 1) % p];
    let left = group[(me + p - 1) % p];
    for _ in 0..p - 1 {
        let rr = ctx.irecv(left, tag);
        let sr = ctx.send_raw(right, chunk, tag).await;
        ctx.wait(rr).await;
        ctx.wait(sr).await;
    }
}

/// Binomial bcast over an explicit subgroup (sub-communicator surface).
pub(crate) async fn subgroup_bcast(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    subgroup_binomial_bcast(ctx, group, root, bytes, tag).await;
}

/// Binomial reduce over an explicit subgroup (sub-communicator surface).
pub(crate) async fn subgroup_reduce(
    ctx: &mut RankCtx,
    group: &[usize],
    root: usize,
    bytes: u64,
    tag: u64,
) {
    subgroup_binomial_reduce(ctx, group, root, bytes, tag).await;
}

/// Ring allgather over an explicit subgroup (sub-communicator surface).
pub(crate) async fn subgroup_allgather(
    ctx: &mut RankCtx,
    group: &[usize],
    bytes_each: u64,
    tag: u64,
) {
    subgroup_ring_allgather(ctx, group, bytes_each, tag).await;
}

/// Dissemination barrier over an explicit subgroup.
pub(crate) async fn subgroup_barrier(ctx: &mut RankCtx, group: &[usize], tag: u64) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = group
        .iter()
        .position(|&g| g == ctx.rank())
        .expect("caller is in group");
    let mut k = 1;
    while k < p {
        let to = group[(me + k) % p];
        let from = group[(me + p - k) % p];
        let req = ctx.send_raw(to, 1, tag).await;
        ctx.recv(from, tag).await;
        ctx.wait(req).await;
        k <<= 1;
    }
}

/// Recursive-doubling allreduce over an explicit subgroup (non-power-of-two
/// sizes fold into the nearest power of two).
pub(crate) async fn subgroup_allreduce(ctx: &mut RankCtx, group: &[usize], bytes: u64, tag: u64) {
    let p = group.len();
    if p <= 1 {
        return;
    }
    let me = group
        .iter()
        .position(|&g| g == ctx.rank())
        .expect("caller is in group");
    let p2 = prev_pow2(p);
    let extra = p - p2;
    if me >= p2 {
        let peer = group[me - p2];
        let req = ctx.send_raw(peer, bytes, tag).await;
        ctx.wait(req).await;
        ctx.recv(peer, tag).await;
        return;
    }
    if me < extra {
        ctx.recv(group[me + p2], tag).await;
    }
    let mut mask = 1;
    while mask < p2 {
        let partner = group[me ^ mask];
        ctx.sendrecv(partner, bytes, partner, tag).await;
        mask <<= 1;
    }
    if me < extra {
        let req = ctx.send_raw(group[me + p2], bytes, tag).await;
        ctx.wait(req).await;
    }
}

/// `MPI_Bcast` dispatch: a [`CollConfig`] pin wins; otherwise the
/// implementation profile decides.
pub(crate) async fn bcast(ctx: &mut RankCtx, root: usize, bytes: u64, tag: u64) {
    use crate::profile::BcastAlgo;
    let p = ctx.size();
    if p <= 1 {
        return;
    }
    let sel = ctx.world().coll.select(CollOp::Bcast, bytes);
    if sel.algo != CollAlgo::ProfileDefault {
        if sel.two_level && ctx.world().site_groups.len() > 1 {
            two_level_bcast(ctx, root, bytes, tag, sel.algo).await;
        } else {
            let all: Vec<usize> = (0..p).collect();
            algo_bcast(ctx, &all, root, bytes, tag, sel.algo).await;
        }
        return;
    }
    let suite = ctx.world().profile.collectives;
    let all: Vec<usize> = (0..p).collect();
    match suite.bcast {
        BcastAlgo::Binomial => subgroup_binomial_bcast(ctx, &all, root, bytes, tag).await,
        BcastAlgo::ScatterAllgather => {
            if bytes >= suite.large_threshold && p.is_power_of_two() && p > 2 {
                scatter_allgather_bcast(ctx, root, bytes, tag).await;
            } else {
                subgroup_binomial_bcast(ctx, &all, root, bytes, tag).await;
            }
        }
        BcastAlgo::GridAware => {
            let multi_site = ctx.world().site_groups.len() > 1;
            if multi_site && bytes >= suite.large_threshold {
                grid_bcast(ctx, root, bytes, tag).await;
            } else if multi_site {
                // Topology-aware small-message bcast: site leaders first
                // (one WAN hop), then intra-site trees.
                grid_small_bcast(ctx, root, bytes, tag).await;
            } else {
                subgroup_binomial_bcast(ctx, &all, root, bytes, tag).await;
            }
        }
    }
}

/// Van de Geijn: binomial scatter + ring allgather, oblivious to sites.
/// Requires power-of-two world size (callers fall back otherwise).
async fn scatter_allgather_bcast(ctx: &mut RankCtx, root: usize, bytes: u64, tag: u64) {
    let p = ctx.size();
    let rank = ctx.rank();
    let vrank = (rank + p - root) % p;
    let real = |v: usize| (v + root) % p;
    // Binomial scatter: the holder of a 2·mask block forwards its upper
    // half.
    let mut mask = p >> 1;
    while mask >= 1 {
        if vrank.is_multiple_of(mask << 1) {
            let req = ctx
                .send_raw(real(vrank + mask), bytes * mask as u64 / p as u64, tag)
                .await;
            ctx.wait(req).await;
        } else if vrank % (mask << 1) == mask {
            ctx.recv(real(vrank - mask), tag).await;
        }
        if mask == 1 {
            break;
        }
        mask >>= 1;
    }
    // Ring allgather of the p chunks. In rank order the ring crosses the
    // WAN twice per lap — the grid pathology.
    let chunk = (bytes / p as u64).max(1);
    let right = real((vrank + 1) % p);
    let left = real((vrank + p - 1) % p);
    for _ in 0..p - 1 {
        let rr = ctx.irecv(left, tag);
        let sr = ctx.send_raw(right, chunk, tag).await;
        ctx.wait(rr).await;
        ctx.wait(sr).await;
    }
}

/// GridMPI small-message bcast: root → remote site leaders (parallel WAN),
/// then intra-site binomial trees.
async fn grid_small_bcast(ctx: &mut RankCtx, root: usize, bytes: u64, tag: u64) {
    let groups = ctx.world().site_groups.clone();
    let rank_site = ctx.world().rank_site.clone();
    let rank = ctx.rank();
    let my_site = rank_site[rank];
    let root_site = rank_site[root];
    // WAN fan-out to each remote site's leader.
    let mut reqs = Vec::new();
    for (si, group) in groups.iter().enumerate() {
        if si == root_site {
            continue;
        }
        if rank == root {
            reqs.push(ctx.send_raw(group[0], bytes, tag).await);
        } else if rank == group[0] {
            ctx.recv(root, tag).await;
        }
    }
    for r in reqs {
        ctx.wait(r).await;
    }
    // Intra-site trees.
    let local_root = if my_site == root_site {
        root
    } else {
        groups[my_site][0]
    };
    let group = groups[my_site].clone();
    subgroup_binomial_bcast(ctx, &group, local_root, bytes, tag).await;
}

/// GridMPI large-message bcast: intra-site bcast at the root site, then
/// chunk-parallel inter-site transfers over multiple node pairs, then
/// intra-site allgather at each remote site (Matsuda, Cluster'06).
async fn grid_bcast(ctx: &mut RankCtx, root: usize, bytes: u64, tag: u64) {
    let groups = ctx.world().site_groups.clone();
    let rank_site = ctx.world().rank_site.clone();
    let rank = ctx.rank();
    let my_site = rank_site[rank];
    let root_site = rank_site[root];
    let root_group = groups[root_site].clone();

    // Phase A: full data everywhere in the root site (cheap, LAN).
    if my_site == root_site {
        subgroup_binomial_bcast(ctx, &root_group, root, bytes, tag).await;
    }

    // Phase B: for each remote site, min(|root site|, |site|) parallel WAN
    // streams each carry one chunk.
    let mut reqs = Vec::new();
    for (si, group) in groups.iter().enumerate() {
        if si == root_site {
            continue;
        }
        let m = root_group.len().min(group.len());
        let chunk = (bytes / m as u64).max(1);
        if my_site == root_site {
            if let Some(i) = root_group.iter().position(|&g| g == rank) {
                if i < m {
                    reqs.push(ctx.send_raw(group[i], chunk, tag).await);
                }
            }
        } else if my_site == si {
            if let Some(i) = group.iter().position(|&g| g == rank) {
                if i < m {
                    ctx.recv(root_group[i], tag).await;
                }
            }
        }
    }
    for r in reqs {
        ctx.wait(r).await;
    }

    // Phase C: reassemble inside each remote site.
    if my_site != root_site {
        let group = groups[my_site].clone();
        let m = root_group.len().min(group.len());
        let chunk = (bytes / m as u64).max(1);
        let me_pos = group.iter().position(|&g| g == rank).expect("in group");
        if me_pos < m {
            let holders: Vec<usize> = group[..m].to_vec();
            subgroup_ring_allgather(ctx, &holders, chunk, tag).await;
        }
        // Ranks beyond the chunk holders get the full payload from the
        // local leader.
        if group.len() > m {
            if me_pos == 0 {
                let mut reqs = Vec::new();
                for &g in &group[m..] {
                    reqs.push(ctx.send_raw(g, bytes, tag).await);
                }
                for r in reqs {
                    ctx.wait(r).await;
                }
            } else if me_pos >= m {
                ctx.recv(group[0], tag).await;
            }
        }
    }
}

/// Global reduce to `root`: a [`CollConfig`] pin wins; the profile
/// default is the binomial tree.
pub(crate) async fn reduce(ctx: &mut RankCtx, root: usize, bytes: u64, tag: u64) {
    let p = ctx.size();
    if p <= 1 {
        return;
    }
    let sel = ctx.world().coll.select(CollOp::Reduce, bytes);
    if sel.algo != CollAlgo::ProfileDefault {
        if sel.two_level && ctx.world().site_groups.len() > 1 {
            two_level_reduce(ctx, root, bytes, tag, sel.algo).await;
        } else {
            let all: Vec<usize> = (0..p).collect();
            algo_reduce(ctx, &all, root, bytes, tag, sel.algo).await;
        }
        return;
    }
    let all: Vec<usize> = (0..p).collect();
    subgroup_binomial_reduce(ctx, &all, root, bytes, tag).await;
}

/// `MPI_Allreduce` dispatch: a [`CollConfig`] pin wins; otherwise the
/// implementation profile decides.
pub(crate) async fn allreduce(ctx: &mut RankCtx, bytes: u64, tag: u64) {
    use crate::profile::AllreduceAlgo;
    let p = ctx.size();
    if p <= 1 {
        return;
    }
    let sel = ctx.world().coll.select(CollOp::Allreduce, bytes);
    if sel.algo != CollAlgo::ProfileDefault {
        if sel.two_level && ctx.world().site_groups.len() > 1 {
            two_level_allreduce(ctx, bytes, tag, sel.algo).await;
        } else {
            let all: Vec<usize> = (0..p).collect();
            algo_allreduce(ctx, &all, bytes, tag, sel.algo).await;
        }
        return;
    }
    let suite = ctx.world().profile.collectives;
    match suite.allreduce {
        AllreduceAlgo::RecursiveDoubling => recursive_doubling_allreduce(ctx, bytes, tag).await,
        AllreduceAlgo::Rabenseifner => {
            if bytes >= suite.large_threshold && p.is_power_of_two() && p > 2 {
                rabenseifner_allreduce(ctx, bytes, tag).await;
            } else {
                recursive_doubling_allreduce(ctx, bytes, tag).await;
            }
        }
        AllreduceAlgo::GridAware => {
            // The GridMPI optimisation targets large payloads; small
            // reductions keep the default butterfly (Matsuda 2006).
            if ctx.world().site_groups.len() > 1 && bytes >= suite.large_threshold {
                grid_allreduce(ctx, bytes, tag).await;
            } else {
                recursive_doubling_allreduce(ctx, bytes, tag).await;
            }
        }
    }
}

async fn recursive_doubling_allreduce(ctx: &mut RankCtx, bytes: u64, tag: u64) {
    let p = ctx.size();
    let rank = ctx.rank();
    let p2 = prev_pow2(p);
    let extra = p - p2;
    if rank >= p2 {
        // Fold into the power-of-two core, then collect the result.
        let req = ctx.send_raw(rank - p2, bytes, tag).await;
        ctx.wait(req).await;
        ctx.recv(rank - p2, tag).await;
        return;
    }
    if rank < extra {
        ctx.recv(rank + p2, tag).await;
    }
    let mut mask = 1;
    while mask < p2 {
        let partner = rank ^ mask;
        ctx.sendrecv(partner, bytes, partner, tag).await;
        mask <<= 1;
    }
    if rank < extra {
        let req = ctx.send_raw(rank + p2, bytes, tag).await;
        ctx.wait(req).await;
    }
}

/// Rabenseifner: reduce-scatter (recursive halving) + allgather (recursive
/// doubling). Power-of-two world sizes only.
async fn rabenseifner_allreduce(ctx: &mut RankCtx, bytes: u64, tag: u64) {
    let p = ctx.size();
    let rank = ctx.rank();
    let lg = p.trailing_zeros();
    for k in 0..lg {
        let partner = rank ^ (1 << k);
        let size = (bytes >> (k + 1)).max(1);
        ctx.sendrecv(partner, size, partner, tag).await;
    }
    for k in (0..lg).rev() {
        let partner = rank ^ (1 << k);
        let size = (bytes >> (k + 1)).max(1);
        ctx.sendrecv(partner, size, partner, tag).await;
    }
}

/// GridMPI hierarchical allreduce (Matsuda, Cluster'06). For equal
/// power-of-two site groups: reduce-scatter within each site, exchange
/// only the owned chunk with the counterpart rank of every other site
/// (parallel WAN streams), then allgather within the site. Falls back to
/// a leader-based tree for irregular layouts or tiny payloads.
async fn grid_allreduce(ctx: &mut RankCtx, bytes: u64, tag: u64) {
    let groups = ctx.world().site_groups.clone();
    let rank_site = ctx.world().rank_site.clone();
    let rank = ctx.rank();
    let my_site = rank_site[rank];
    let group = groups[my_site].clone();
    let k = group.len();
    let regular = groups.iter().all(|g| g.len() == k) && k.is_power_of_two() && k > 1;

    if !regular || bytes < 4096 {
        // Leader-based: intra-site reduce, leader exchange, intra-site
        // bcast.
        let leader = group[0];
        subgroup_binomial_reduce(ctx, &group, leader, bytes, tag).await;
        if rank == leader {
            let mut reqs = Vec::new();
            for (si, g) in groups.iter().enumerate() {
                if si != my_site {
                    reqs.push(ctx.send_raw(g[0], bytes, tag).await);
                }
            }
            for (si, g) in groups.iter().enumerate() {
                if si != my_site {
                    ctx.recv(g[0], tag).await;
                }
            }
            for r in reqs {
                ctx.wait(r).await;
            }
        }
        subgroup_binomial_bcast(ctx, &group, leader, bytes, tag).await;
        return;
    }

    let pos = group.iter().position(|&g| g == rank).expect("in group");
    // Phase A: intra-site reduce-scatter (recursive halving).
    let lg = k.trailing_zeros();
    for j in 0..lg {
        let partner = group[pos ^ (1 << j)];
        let size = (bytes >> (j + 1)).max(1);
        ctx.sendrecv(partner, size, partner, tag).await;
    }
    let chunk = (bytes / k as u64).max(1);
    // Phase B: chunk exchange with the counterpart rank of each remote
    // site — many parallel node-to-node WAN streams, the Matsuda insight.
    let mut reqs = Vec::new();
    for (si, g) in groups.iter().enumerate() {
        if si != my_site {
            reqs.push(ctx.irecv(g[pos], tag));
        }
    }
    for (si, g) in groups.iter().enumerate() {
        if si != my_site {
            reqs.push(ctx.send_raw(g[pos], chunk, tag).await);
        }
    }
    ctx.waitall(reqs).await;
    // Phase C: intra-site allgather of the reduced chunks.
    subgroup_ring_allgather(ctx, &group, chunk, tag).await;
}

/// `MPI_Allgather` dispatch: a [`CollConfig`] pin wins; the profile
/// default is the ring.
pub(crate) async fn ring_allgather(ctx: &mut RankCtx, bytes_each: u64, tag: u64) {
    let p = ctx.size();
    if p <= 1 {
        return;
    }
    let sel = ctx.world().coll.select(CollOp::Allgather, bytes_each);
    if sel.algo != CollAlgo::ProfileDefault {
        if sel.two_level && ctx.world().site_groups.len() > 1 {
            two_level_allgather(ctx, bytes_each, tag, sel.algo).await;
        } else {
            let all: Vec<usize> = (0..p).collect();
            algo_allgather(ctx, &all, bytes_each, tag, sel.algo).await;
        }
        return;
    }
    let all: Vec<usize> = (0..p).collect();
    subgroup_ring_allgather(ctx, &all, bytes_each, tag).await;
}

/// Alltoall(v) dispatch: a [`CollConfig`] pin can select the linear
/// variant or (for uniform payloads on multi-site topologies) the
/// two-level variant; the default is pairwise exchange — `p - 1` rounds;
/// in round `k` rank `r` sends to `r + k` and receives from `r - k`.
pub(crate) async fn alltoallv(ctx: &mut RankCtx, send_sizes: &[u64], tag: u64) {
    let p = ctx.size();
    let r = ctx.rank();
    if p <= 1 {
        return;
    }
    let per_pair = send_sizes.iter().copied().max().unwrap_or(0);
    let sel = ctx.world().coll.select(CollOp::Alltoall, per_pair);
    if sel.algo != CollAlgo::ProfileDefault {
        let uniform = send_sizes.windows(2).all(|w| w[0] == w[1]);
        if sel.two_level && uniform && ctx.world().site_groups.len() > 1 {
            two_level_alltoall(ctx, per_pair, tag).await;
            return;
        }
        if sel.algo == CollAlgo::Linear {
            linear_alltoallv(ctx, send_sizes, tag).await;
            return;
        }
        // Pairwise (and any other pin) falls through to the exchange below.
    }
    let mut recvs = Vec::with_capacity(p - 1);
    for k in 1..p {
        let from = (r + p - k) % p;
        recvs.push(ctx.irecv(from, tag));
    }
    let mut sends = Vec::with_capacity(p - 1);
    for k in 1..p {
        let to = (r + k) % p;
        sends.push(ctx.send_raw(to, send_sizes[to].max(1), tag).await);
    }
    ctx.waitall(recvs).await;
    ctx.waitall(sends).await;
}

/// Linear gather to `root`.
pub(crate) async fn gather(ctx: &mut RankCtx, root: usize, bytes_each: u64, tag: u64) {
    let p = ctx.size();
    let r = ctx.rank();
    if r == root {
        for k in 0..p {
            if k != root {
                ctx.recv(k, tag).await;
            }
        }
    } else {
        let req = ctx.send_raw(root, bytes_each, tag).await;
        ctx.wait(req).await;
    }
}

/// Linear scatter from `root`.
pub(crate) async fn scatter(ctx: &mut RankCtx, root: usize, bytes_each: u64, tag: u64) {
    let p = ctx.size();
    let r = ctx.rank();
    if r == root {
        let mut reqs = Vec::new();
        for k in 0..p {
            if k != root {
                reqs.push(ctx.send_raw(k, bytes_each, tag).await);
            }
        }
        for req in reqs {
            ctx.wait(req).await;
        }
    } else {
        ctx.recv(root, tag).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coll_tags_are_namespaced_by_op() {
        // Same sequence number, different ops: never the same tag.
        for (i, &a) in CollOp::PINNABLE.iter().enumerate() {
            for &b in &CollOp::PINNABLE[i + 1..] {
                assert_ne!(coll_tag(a, 1), coll_tag(b, 1), "{a:?} vs {b:?}");
            }
        }
        // All collective tags stay in the reserved namespace.
        assert_ne!(coll_tag(CollOp::Barrier, 7) & (1 << 62), 0);
    }

    #[test]
    fn default_config_pins_nothing() {
        let cfg = CollConfig::new();
        for op in CollOp::PINNABLE {
            for bytes in [1u64, 64 << 10, 16 << 20] {
                assert_eq!(cfg.select(op, bytes), CollSel::default());
            }
        }
    }

    #[test]
    fn pin_is_per_op_and_size_class() {
        let cfg = CollConfig::new()
            .pin(
                CollOp::Bcast,
                SizeClass::Large,
                CollSel::flat(CollAlgo::Pipeline),
            )
            .pin_all(CollOp::Allreduce, CollSel::two_level(CollAlgo::Ring));
        assert_eq!(cfg.select(CollOp::Bcast, 4 << 20).algo, CollAlgo::Pipeline);
        assert_eq!(
            cfg.select(CollOp::Bcast, 1024).algo,
            CollAlgo::ProfileDefault
        );
        assert_eq!(
            cfg.select(CollOp::Reduce, 4 << 20).algo,
            CollAlgo::ProfileDefault
        );
        for bytes in [1u64, 64 << 10, 16 << 20] {
            let sel = cfg.select(CollOp::Allreduce, bytes);
            assert_eq!(sel.algo, CollAlgo::Ring);
            assert!(sel.two_level);
        }
        // Non-pinnable ops always report the default.
        let pinned = CollConfig::new().pin_all(CollOp::Barrier, CollSel::flat(CollAlgo::Ring));
        assert_eq!(pinned.select(CollOp::Barrier, 1), CollSel::default());
    }

    #[test]
    fn size_classes_split_at_the_documented_bounds() {
        let cfg = CollConfig::new();
        assert_eq!(cfg.size_class(cfg.small_max - 1), SizeClass::Small);
        assert_eq!(cfg.size_class(cfg.small_max), SizeClass::Medium);
        assert_eq!(cfg.size_class(cfg.large_min - 1), SizeClass::Medium);
        assert_eq!(cfg.size_class(cfg.large_min), SizeClass::Large);
    }

    #[test]
    fn inorder_tree_is_a_tree_over_all_vranks() {
        for p in 1..=17 {
            let mut seen = vec![0u32; p];
            seen[0] += 1; // the root has no parent edge
            for v in 0..p {
                let (parent, children) = inorder_tree(p, v);
                assert_eq!(parent.is_none(), v == 0);
                for c in children {
                    assert!(c < p);
                    seen[c] += 1;
                    // Child/parent views agree.
                    assert_eq!(inorder_tree(p, c).0, Some(v));
                }
            }
            // Every vrank is reached exactly once.
            assert!(seen.iter().all(|&n| n == 1), "p={p}: {seen:?}");
        }
    }
}
