//! `RankCtx` — the MPI-like API each simulated rank programs against.
//!
//! The surface mirrors the MPI subset the paper's workloads need:
//! blocking and nonblocking point-to-point (`send`/`recv`/`isend`/
//! `irecv`/`wait`), and the collectives used by the NAS benchmarks
//! (`barrier`, `bcast`, `reduce`, `allreduce`, `allgather`, `alltoall`,
//! `alltoallv`, `gather`, `scatter`). Payloads are sizes, not data — the
//! simulator models time, not values.
//!
//! Rank programs are `async`: every potentially blocking operation
//! returns a future, and the engine decides how a suspended rank waits —
//! parked on its own OS thread (threaded engine) or as a pooled
//! continuation polled inline by the kernel (pooled engine, the default).
//! The two engines produce bit-identical event streams; see
//! `desim::exec` for the blocking-point contract.

use std::sync::Arc;

use desim::{Completion, Cx, SimDuration, SimTime};

use crate::collectives;
use crate::error::{FaultPolicy, MpiError};
use crate::trace::{TraceEvent, TraceKind};
use crate::world::{MsgInfo, Posted, RecvDone, WorldInner, CTRL_BYTES, HEADER_BYTES};

/// A nonblocking operation handle (the `MPI_Request` analogue).
pub struct Request(ReqInner);

enum ReqInner {
    /// Already complete (eager sends); carries the send's message id.
    Done(u64, Option<MsgInfo>),
    /// A rendezvous send in flight (message id + delivery completion).
    Send(u64, Completion<Result<(), MpiError>>),
    /// A receive in flight; the id (when present) lets a fault policy's
    /// timeout cancel the still-posted receive.
    Recv(Option<u64>, Completion<Result<RecvDone, MpiError>>),
    /// A receive satisfied from the unexpected queue; the copy cost is paid
    /// at wait time.
    RecvImmediate(MsgInfo, SimDuration),
}

impl Request {
    /// The message id carried by a send request (0 for receives still in
    /// flight — their id arrives with the envelope).
    fn msg_id(&self) -> u64 {
        match &self.0 {
            ReqInner::Done(id, _) | ReqInner::Send(id, _) => *id,
            ReqInner::Recv(..) => 0,
            ReqInner::RecvImmediate(info, _) => info.msg_id,
        }
    }
}

/// Execution context handed to each rank of an MPI program.
pub struct RankCtx {
    rank: usize,
    size: usize,
    cx: Cx,
    world: Arc<WorldInner>,
    gflops: f64,
    /// Per-op-kind collective sequence counters. Tags are namespaced by
    /// [`collectives::CollOp`], so overlapping collectives of different
    /// ops on disjoint subgroups can never collide, and ranks that ran a
    /// different op mix on their subgroups still agree on the sequence
    /// number of any op they later meet in together.
    pub(crate) coll_seq: [u64; collectives::CollOp::COUNT],
    in_collective: bool,
    policy: FaultPolicy,
}

impl RankCtx {
    pub(crate) fn new(rank: usize, cx: Cx, world: Arc<WorldInner>) -> RankCtx {
        let gflops = world.net.cpu_gflops(world.placement[rank]);
        RankCtx {
            rank,
            size: world.size(),
            cx,
            world,
            gflops,
            coll_seq: [0; collectives::CollOp::COUNT],
            in_collective: false,
            policy: FaultPolicy::none(),
        }
    }

    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.cx.now()
    }

    /// The underlying execution context handle.
    pub fn cx(&self) -> &Cx {
        &self.cx
    }

    /// The node's compute rate in Gflop/s (heterogeneous across sites).
    pub fn gflops(&self) -> f64 {
        self.gflops
    }

    pub(crate) fn world(&self) -> &Arc<WorldInner> {
        &self.world
    }

    /// Rank → site name (topology introspection for grid-aware workloads).
    pub fn site_of_rank(&self, rank: usize) -> String {
        let node = self.world.placement[rank];
        self.world.net.site_name(self.world.net.site_of(node))
    }

    /// Model `gflop` billion floating-point operations of local compute.
    pub async fn compute_gflop(&self, gflop: f64) {
        self.compute(SimDuration::from_secs_f64(gflop / self.gflops))
            .await;
    }

    /// Model a fixed amount of local compute time.
    pub async fn compute(&self, d: SimDuration) {
        let t0 = self.cx.now();
        self.cx.advance(d).await;
        self.trace(TraceKind::Compute, None, 0, t0, 0);
    }

    /// Append a trace span ending now (no-op unless tracing or an
    /// observability recorder is enabled).
    fn trace(&self, kind: TraceKind, peer: Option<usize>, bytes: u64, start: SimTime, msg_id: u64) {
        if let Some(rec) = self.world.obs_of(self.rank) {
            rec.record(&desim::obs::Event::MpiSpan {
                rank: self.rank as u64,
                op: kind.name(),
                peer: peer.map(|p| p as i64).unwrap_or(-1),
                bytes,
                start_ns: start.as_nanos(),
                end_ns: self.cx.now().as_nanos(),
                msg_id,
            });
        }
        if let Some(t) = &self.world.trace {
            t.lock().push(TraceEvent {
                rank: self.rank,
                kind,
                peer,
                bytes,
                start_ns: start.as_nanos(),
                end_ns: self.cx.now().as_nanos(),
                msg_id,
            });
        }
    }

    /// Emit an application-level fault event (e.g. `"chunk_reissued"`)
    /// into the observability stream, so recovery actions show up on the
    /// trace's fault track. No-op without a recorder; never affects
    /// timing either way.
    pub fn emit_fault(&self, kind: &'static str, subject: u64, info: f64) {
        let s = self.cx.sched();
        self.world.emit_fault(&s, self.rank, kind, subject, info);
    }

    /// Emit an application-phase marker (e.g. `"warmup"`, `"timed"`) into
    /// the observability stream. No-op without a recorder; never affects
    /// timing either way.
    pub fn phase(&self, name: &'static str) {
        if let Some(rec) = self.world.obs_of(self.rank) {
            rec.record(&desim::obs::Event::Phase {
                rank: self.rank as u64,
                name,
                t_ns: self.cx.now().as_nanos(),
            });
        }
    }

    /// Record a named measurement for the run report.
    pub fn record(&self, key: impl Into<String>, value: f64) {
        self.world
            .records
            .lock()
            .push((self.rank, key.into(), value));
    }

    async fn pay_overhead(&self, peer: usize) {
        self.cx.advance(self.world.overhead(self.rank, peer)).await;
    }

    /// Blocking standard-mode send (`MPI_Send`): eager messages buffer and
    /// return, rendezvous messages block until delivered.
    pub async fn send(&mut self, dst: usize, bytes: u64, tag: u64) {
        let r = self.isend(dst, bytes, tag).await;
        self.wait(r).await;
    }

    /// Nonblocking send (`MPI_Isend`). Async only for the per-message
    /// software overhead; the transfer itself never blocks the caller.
    pub async fn isend(&mut self, dst: usize, bytes: u64, tag: u64) -> Request {
        if !self.in_collective {
            self.world.stats.lock().record_p2p(bytes);
        }
        let t0 = self.cx.now();
        let r = self.send_raw(dst, bytes, tag).await;
        if !self.in_collective {
            self.trace(TraceKind::Send, Some(dst), bytes, t0, r.msg_id());
        }
        r
    }

    /// Internal send without application-level statistics (collective
    /// steps).
    pub(crate) async fn send_raw(&mut self, dst: usize, bytes: u64, tag: u64) -> Request {
        self.world.stats.lock().record_pair(self.rank, dst, bytes);
        self.pay_overhead(dst).await;
        let s = self.cx.sched();
        let msg_id = self.world.next_msg_id(self.rank, dst);
        if bytes <= self.world.eager_threshold {
            self.world.stats.lock().record_wire(bytes + HEADER_BYTES);
            self.world
                .eager_send(&s, self.rank, dst, tag, bytes, msg_id);
            Request(ReqInner::Done(msg_id, None))
        } else {
            self.world
                .stats
                .lock()
                .record_wire(bytes + HEADER_BYTES + 2 * CTRL_BYTES);
            let c = self.world.rndv_send(&s, self.rank, dst, tag, bytes, msg_id);
            Request(ReqInner::Send(msg_id, c))
        }
    }

    /// Blocking receive from a specific source and tag (`MPI_Recv`).
    pub async fn recv(&mut self, src: usize, tag: u64) -> MsgInfo {
        self.recv_sel(Some(src), Some(tag)).await
    }

    /// Blocking receive from any source (`MPI_ANY_SOURCE`).
    pub async fn recv_any(&mut self, tag: u64) -> MsgInfo {
        self.recv_sel(None, Some(tag)).await
    }

    /// Blocking receive with full wildcard control.
    pub async fn recv_sel(&mut self, src: Option<usize>, tag: Option<u64>) -> MsgInfo {
        let r = self.irecv_sel(src, tag);
        self.wait(r).await.expect("receive yields a message")
    }

    /// Nonblocking receive (`MPI_Irecv`).
    pub fn irecv(&mut self, src: usize, tag: u64) -> Request {
        self.irecv_sel(Some(src), Some(tag))
    }

    /// Nonblocking receive with wildcards.
    pub fn irecv_sel(&mut self, src: Option<usize>, tag: Option<u64>) -> Request {
        let s = self.cx.sched();
        match self.world.post_recv(&s, self.rank, src, tag) {
            Posted::Immediate(done) => Request(ReqInner::RecvImmediate(done.info, done.copy)),
            Posted::Pending { id, rx } => Request(ReqInner::Recv(id, rx)),
        }
    }

    // ----- fallible API (fault-tolerant programs) -----

    /// Set this rank's retry/timeout policy for the `try_*` operations.
    /// The default, [`FaultPolicy::none`], arms no timers at all.
    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        self.policy = policy;
    }

    /// The active retry/timeout policy.
    pub fn fault_policy(&self) -> FaultPolicy {
        self.policy
    }

    /// True if `rank` is currently inside a failure window (perfect
    /// failure detector).
    pub fn peer_failed(&self, rank: usize) -> bool {
        self.world.rank_failed(rank, self.cx.now())
    }

    /// Fallible blocking send: retries per the fault policy while the
    /// peer is down, then reports [`MpiError::PeerFailed`]. Detects the
    /// caller's own death between attempts.
    pub async fn try_send(&mut self, dst: usize, bytes: u64, tag: u64) -> Result<(), MpiError> {
        let mut attempt = 0u32;
        loop {
            if self.peer_failed(self.rank) {
                return Err(MpiError::SelfFailed);
            }
            if !self.peer_failed(dst) {
                let r = self.isend(dst, bytes, tag).await;
                return self.try_wait(r).await.map(|_| ());
            }
            if attempt >= self.policy.retries {
                return Err(MpiError::PeerFailed { rank: dst });
            }
            self.cx.advance(self.policy.backoff(attempt)).await;
            attempt += 1;
        }
    }

    /// Fallible blocking receive from a specific source and tag.
    pub async fn try_recv(&mut self, src: usize, tag: u64) -> Result<MsgInfo, MpiError> {
        self.try_recv_sel(Some(src), Some(tag)).await
    }

    /// Fallible blocking receive from any source.
    pub async fn try_recv_any(&mut self, tag: u64) -> Result<MsgInfo, MpiError> {
        self.try_recv_sel(None, Some(tag)).await
    }

    /// Fallible blocking receive with wildcards. Honors the policy's
    /// `recv_timeout`.
    pub async fn try_recv_sel(
        &mut self,
        src: Option<usize>,
        tag: Option<u64>,
    ) -> Result<MsgInfo, MpiError> {
        let r = self.irecv_sel(src, tag);
        match self.try_wait(r).await? {
            Some(info) => Ok(info),
            None => unreachable!("receive requests always carry an envelope"),
        }
    }

    /// Fallible `MPI_Wait`: completes the request or reports why it
    /// cannot. For pending receives, a `recv_timeout` in the fault policy
    /// arms a one-shot cancellation timer; the timer finds nothing to do
    /// when the message wins the race, so it never disturbs a successful
    /// receive's timing.
    pub async fn try_wait(&mut self, r: Request) -> Result<Option<MsgInfo>, MpiError> {
        match r.0 {
            ReqInner::Done(_, info) => Ok(info),
            ReqInner::Send(msg_id, c) => {
                let t0 = self.cx.now();
                let res = self.cx.wait(c).await;
                if !self.in_collective {
                    self.trace(TraceKind::WaitSend, None, 0, t0, msg_id);
                }
                res.map(|()| None)
            }
            ReqInner::Recv(id, c) => {
                let t0 = self.cx.now();
                if let (Some(timeout), Some(id)) = (self.policy.recv_timeout, id) {
                    let w = Arc::clone(&self.world);
                    let me = self.rank;
                    let s = self.cx.sched();
                    s.call_at(self.cx.now() + timeout, move |s2| {
                        w.cancel_posted(s2, me, id, timeout);
                    });
                }
                let done = self.cx.wait(c).await?;
                if !done.copy.is_zero() {
                    self.cx.advance(done.copy).await;
                }
                if !self.in_collective {
                    self.trace(
                        TraceKind::Recv,
                        Some(done.info.src),
                        done.info.bytes,
                        t0,
                        done.info.msg_id,
                    );
                }
                Ok(Some(done.info))
            }
            ReqInner::RecvImmediate(info, copy) => {
                let t0 = self.cx.now();
                if !copy.is_zero() {
                    self.cx.advance(copy).await;
                }
                if !self.in_collective {
                    self.trace(TraceKind::Recv, Some(info.src), info.bytes, t0, info.msg_id);
                }
                Ok(Some(info))
            }
        }
    }

    /// Fallible `MPI_Waitall`: first failure wins; remaining requests are
    /// still waited on (so no completion is leaked mid-collective).
    pub async fn try_waitall(
        &mut self,
        rs: Vec<Request>,
    ) -> Result<Vec<Option<MsgInfo>>, MpiError> {
        let mut out = Vec::with_capacity(rs.len());
        let mut first_err = None;
        for r in rs {
            match self.try_wait(r).await {
                Ok(info) => out.push(info),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            None => Ok(out),
            Some(e) => Err(e),
        }
    }

    /// Complete a request (`MPI_Wait`). Returns the envelope for receives.
    /// Panics on injected faults — use [`RankCtx::try_wait`] in
    /// fault-tolerant programs.
    pub async fn wait(&mut self, r: Request) -> Option<MsgInfo> {
        self.try_wait(r)
            .await
            .unwrap_or_else(|e| panic!("MPI operation failed: {e}"))
    }

    /// Complete a set of requests (`MPI_Waitall`).
    pub async fn waitall(&mut self, rs: Vec<Request>) -> Vec<Option<MsgInfo>> {
        let mut out = Vec::with_capacity(rs.len());
        for r in rs {
            out.push(self.wait(r).await);
        }
        out
    }

    /// Simultaneous send and receive (`MPI_Sendrecv`).
    pub async fn sendrecv(&mut self, dst: usize, send_bytes: u64, src: usize, tag: u64) -> MsgInfo {
        let rr = self.irecv(src, tag);
        let sr = self.isend(dst, send_bytes, tag).await;
        let info = self.wait(rr).await.expect("sendrecv receives");
        self.wait(sr).await;
        info
    }

    // ----- collectives (delegate to `collectives`) -----

    /// Shared collective prologue/epilogue for sub-communicator operations.
    pub(crate) async fn coll_on(
        &mut self,
        op: &str,
        bytes: u64,
        f: impl AsyncFnOnce(&mut RankCtx, u64),
    ) {
        self.coll(op, bytes, f).await
    }

    async fn coll<R>(
        &mut self,
        op: &str,
        bytes: u64,
        f: impl AsyncFnOnce(&mut RankCtx, u64) -> R,
    ) -> R {
        self.world.stats.lock().record_collective(op, bytes);
        let kind = collectives::CollOp::from_name(op);
        self.coll_seq[kind as usize] += 1;
        let tag = collectives::coll_tag(kind, self.coll_seq[kind as usize]);
        let was = std::mem::replace(&mut self.in_collective, true);
        let t0 = self.cx.now();
        let r = f(self, tag).await;
        self.in_collective = was;
        if !was {
            let kind = TraceKind::Collective(match op {
                "barrier" => "barrier",
                "bcast" | "comm_bcast" => "bcast",
                "reduce" | "comm_reduce" => "reduce",
                "allreduce" | "comm_allreduce" => "allreduce",
                "allgather" | "comm_allgather" => "allgather",
                "alltoall" => "alltoall",
                "alltoallv" => "alltoallv",
                "gather" => "gather",
                "scatter" => "scatter",
                _ => "collective",
            });
            self.trace(kind, None, bytes, t0, 0);
        }
        r
    }

    /// `MPI_Barrier` (dissemination algorithm).
    pub async fn barrier(&mut self) {
        self.coll("barrier", 0, collectives::barrier).await;
    }

    /// `MPI_Bcast` of `bytes` from `root` (algorithm per implementation).
    pub async fn bcast(&mut self, root: usize, bytes: u64) {
        self.coll("bcast", bytes, async |c, tag| {
            collectives::bcast(c, root, bytes, tag).await
        })
        .await;
    }

    /// `MPI_Reduce` of `bytes` to `root` (binomial tree).
    pub async fn reduce(&mut self, root: usize, bytes: u64) {
        self.coll("reduce", bytes, async |c, tag| {
            collectives::reduce(c, root, bytes, tag).await
        })
        .await;
    }

    /// `MPI_Allreduce` of `bytes` (algorithm per implementation).
    pub async fn allreduce(&mut self, bytes: u64) {
        self.coll("allreduce", bytes, async |c, tag| {
            collectives::allreduce(c, bytes, tag).await
        })
        .await;
    }

    /// `MPI_Allgather` with `bytes_each` contributed per rank (ring).
    pub async fn allgather(&mut self, bytes_each: u64) {
        self.coll("allgather", bytes_each, async |c, tag| {
            collectives::ring_allgather(c, bytes_each, tag).await
        })
        .await;
    }

    /// `MPI_Alltoall` with `bytes_per_pair` exchanged between every pair.
    pub async fn alltoall(&mut self, bytes_per_pair: u64) {
        self.coll("alltoall", bytes_per_pair, async |c, tag| {
            let sizes = vec![bytes_per_pair; c.size()];
            collectives::alltoallv(c, &sizes, tag).await
        })
        .await;
    }

    /// `MPI_Alltoallv`: `send_sizes[d]` bytes go to rank `d`.
    pub async fn alltoallv(&mut self, send_sizes: &[u64]) {
        let total: u64 = send_sizes.iter().sum();
        let sizes = send_sizes.to_vec();
        self.coll("alltoallv", total, async move |c, tag| {
            collectives::alltoallv(c, &sizes, tag).await
        })
        .await;
    }

    /// `MPI_Gather` of `bytes_each` per rank to `root` (linear).
    pub async fn gather(&mut self, root: usize, bytes_each: u64) {
        self.coll("gather", bytes_each, async |c, tag| {
            collectives::gather(c, root, bytes_each, tag).await
        })
        .await;
    }

    /// `MPI_Scatter` of `bytes_each` per rank from `root` (linear).
    pub async fn scatter(&mut self, root: usize, bytes_each: u64) {
        self.coll("scatter", bytes_each, async |c, tag| {
            collectives::scatter(c, root, bytes_each, tag).await
        })
        .await;
    }
}
