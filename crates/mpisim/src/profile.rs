//! Implementation profiles: the paper's Table 1 rendered as model data.
//!
//! Each of the four MPI implementations the paper evaluates is described by
//! the axes that drive its measured behaviour:
//!
//! * per-message software overhead (Table 4's +5/+21 µs deltas over raw
//!   TCP, LAN and WAN variants);
//! * default eager→rendezvous threshold (Table 5's "original threshold");
//! * socket-buffer policy (§4.2.1: who honours kernel autotuning, who pins
//!   an explicit size, who pins the kernel *default* size);
//! * software pacing on long paths (GridMPI, [Takano 2005]);
//! * a data-pipeline window cap (OpenMPI's BTL fragmentation, visible as
//!   the lower large-message bandwidth of Fig. 7);
//! * the collective-algorithm suite (GridMPI's grid-aware `MPI_Bcast` and
//!   `MPI_Allreduce`, §2.1.4);
//! * known failure modes (MPICH-Madeleine times out on BT and SP in the
//!   8+8 grid runs, §4.3).

use desim::SimDuration;
use netsim::SockBufRequest;

/// The four implementations the paper compares.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MpiImpl {
    /// MPICH2 1.0.5 — the reference implementation.
    Mpich2,
    /// GridMPI 1.1 — grid-optimised TCP and collectives.
    GridMpi,
    /// MPICH-Madeleine (svn 2006-12-06) — cluster-of-clusters gateways.
    MpichMadeleine,
    /// OpenMPI 1.1.4 — component architecture, BTL/TCP.
    OpenMpi,
    /// MPICH-G2 (Globus) — the paper's future-work candidate (§5):
    /// topology-aware collectives and GridFTP-style parallel TCP streams
    /// for large messages, at the price of Globus software overhead.
    MpichG2,
    /// MPICH-VMI — Table 1's seventh row: VMI gateways between fabrics and
    /// collectives "optimized to avoid long-distance communications". The
    /// paper drops it for being unmaintained; modelled here to complete
    /// the feature matrix.
    MpichVmi,
}

impl MpiImpl {
    /// The four implementations the paper evaluates, in its order.
    pub const ALL: [MpiImpl; 4] = [
        MpiImpl::Mpich2,
        MpiImpl::GridMpi,
        MpiImpl::MpichMadeleine,
        MpiImpl::OpenMpi,
    ];

    /// The evaluated four plus the modelled extras (MPICH-G2, MPICH-VMI).
    pub const EXTENDED: [MpiImpl; 6] = [
        MpiImpl::Mpich2,
        MpiImpl::GridMpi,
        MpiImpl::MpichMadeleine,
        MpiImpl::OpenMpi,
        MpiImpl::MpichG2,
        MpiImpl::MpichVmi,
    ];

    /// Human-readable name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            MpiImpl::Mpich2 => "MPICH2",
            MpiImpl::GridMpi => "GridMPI",
            MpiImpl::MpichMadeleine => "MPICH-Madeleine",
            MpiImpl::OpenMpi => "OpenMPI",
            MpiImpl::MpichG2 => "MPICH-G2",
            MpiImpl::MpichVmi => "MPICH-VMI",
        }
    }

    /// The built-in, untuned profile of this implementation.
    pub fn profile(self) -> ImplProfile {
        match self {
            MpiImpl::Mpich2 => ImplProfile::mpich2(),
            MpiImpl::GridMpi => ImplProfile::gridmpi(),
            MpiImpl::MpichMadeleine => ImplProfile::mpich_madeleine(),
            MpiImpl::OpenMpi => ImplProfile::openmpi(),
            MpiImpl::MpichG2 => ImplProfile::mpich_g2(),
            MpiImpl::MpichVmi => ImplProfile::mpich_vmi(),
        }
    }
}

/// Socket-buffer sizing behaviour of an implementation (§4.2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SocketPolicy {
    /// No `setsockopt`: kernel autotuning applies (MPICH2,
    /// MPICH-Madeleine). Raising `tcp_rmem[2]`/`tcp_wmem[2]` is sufficient.
    OsAutotune,
    /// Pins an explicit size at socket creation (OpenMPI: 128 kB); needs
    /// `-mca btl_tcp_sndbuf/rcvbuf` *and* raised `rmem_max`/`wmem_max`.
    Fixed(u64),
    /// Pins the kernel-default (middle) value, so the paper must raise the
    /// middle of the `tcp_rmem`/`tcp_wmem` triple (GridMPI).
    KernelDefault,
}

impl SocketPolicy {
    /// The `setsockopt` request this policy issues.
    pub fn request(self) -> SockBufRequest {
        match self {
            SocketPolicy::OsAutotune => SockBufRequest::OsDefault,
            SocketPolicy::Fixed(b) => SockBufRequest::Explicit(b),
            SocketPolicy::KernelDefault => SockBufRequest::KernelDefault,
        }
    }
}

/// Broadcast algorithm.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BcastAlgo {
    /// Binomial tree (all message sizes).
    Binomial,
    /// Van de Geijn scatter + ring allgather above `large_threshold`,
    /// binomial below — topology-*oblivious* (the MPICH2/OpenMPI default,
    /// whose ring crosses the WAN on every step).
    ScatterAllgather,
    /// GridMPI: topology-aware hierarchical bcast — one set of parallel
    /// inter-site transfers, then intra-site trees (Matsuda 2006).
    GridAware,
}

/// Allreduce algorithm.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllreduceAlgo {
    /// Recursive doubling (all sizes).
    RecursiveDoubling,
    /// Rabenseifner reduce-scatter + allgather above `large_threshold` —
    /// topology-oblivious.
    Rabenseifner,
    /// GridMPI: hierarchical intra-site reduce, parallel inter-site
    /// exchange, intra-site bcast (Matsuda 2006).
    GridAware,
}

/// Collective algorithm choices of one implementation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CollectiveSuite {
    /// `MPI_Bcast` algorithm.
    pub bcast: BcastAlgo,
    /// `MPI_Allreduce` / `MPI_Reduce` algorithm family.
    pub allreduce: AllreduceAlgo,
    /// Message size above which scatter/allgather-style algorithms kick in.
    pub large_threshold: u64,
}

/// The complete behavioural model of one MPI implementation.
#[derive(Clone, Debug)]
pub struct ImplProfile {
    /// Which implementation this profile models.
    pub impl_id: MpiImpl,
    /// Per-message software overhead on intra-site routes (Table 4 LAN
    /// delta over raw TCP).
    pub overhead_lan: SimDuration,
    /// Per-message software overhead on inter-site routes (Table 4 WAN
    /// delta over raw TCP).
    pub overhead_wan: SimDuration,
    /// Default eager→rendezvous threshold, bytes (Table 5 "original";
    /// `u64::MAX` = never uses rendezvous, the GridMPI default).
    pub eager_threshold: u64,
    /// Socket buffer policy.
    pub socket_policy: SocketPolicy,
    /// Software pacing of WAN sends.
    pub pacing: bool,
    /// Cap on in-flight user data per connection (BTL pipeline depth ×
    /// fragment size). `None` = no middleware cap.
    pub data_window_cap: Option<u64>,
    /// Stripe data messages larger than `.0` bytes over `.1` parallel TCP
    /// streams (MPICH-G2's GridFTP-style large-message support, §2.1.5).
    pub parallel_streams: Option<(u64, u32)>,
    /// Use the site's high-speed fabric (Myrinet/Infiniband/SCI) for
    /// intra-site messages instead of TCP — the heterogeneity management
    /// of MPICH-Madeleine/OpenMPI/VendorMPI (Table 1). Off in the paper's
    /// main experiments ("all the communications use TCP", §1); the
    /// `repro heterogeneity` extension turns it on. `Some(overhead)` adds
    /// the per-message cost of the gateway/protocol management layer.
    pub fast_lan: Option<SimDuration>,
    /// Collective algorithms.
    pub collectives: CollectiveSuite,
    /// Memory-copy rate for the extra unexpected-message copy (Fig. 4
    /// "arrow 2"), bytes/s.
    pub copy_rate: f64,
    /// NPB kernels this implementation fails to finish on the 8+8 grid
    /// configuration ("we can not obtain results with MPICH-Madeleine for
    /// BT and SP because the application timeout", §4.3).
    pub grid_timeouts: &'static [&'static str],
}

impl ImplProfile {
    /// MPICH2 1.0.5 with default parameters (the paper's reference).
    pub fn mpich2() -> ImplProfile {
        ImplProfile {
            impl_id: MpiImpl::Mpich2,
            overhead_lan: SimDuration::from_micros(4),
            overhead_wan: SimDuration::from_micros(6),
            eager_threshold: 256 * 1024,
            socket_policy: SocketPolicy::OsAutotune,
            pacing: false,
            data_window_cap: None,
            parallel_streams: None,
            fast_lan: None,
            collectives: CollectiveSuite {
                bcast: BcastAlgo::ScatterAllgather,
                allreduce: AllreduceAlgo::Rabenseifner,
                large_threshold: 12 * 1024,
            },
            copy_rate: 1.5e9,
            grid_timeouts: &[],
        }
    }

    /// GridMPI 1.1 (no IMPI; all communication over TCP, as in the paper).
    pub fn gridmpi() -> ImplProfile {
        ImplProfile {
            impl_id: MpiImpl::GridMpi,
            overhead_lan: SimDuration::from_micros(4),
            overhead_wan: SimDuration::from_micros(7),
            // "by default GridMPI does not use the rendez-vous mode".
            eager_threshold: u64::MAX,
            socket_policy: SocketPolicy::KernelDefault,
            pacing: true,
            data_window_cap: None,
            parallel_streams: None,
            fast_lan: None,
            collectives: CollectiveSuite {
                bcast: BcastAlgo::GridAware,
                allreduce: AllreduceAlgo::GridAware,
                large_threshold: 12 * 1024,
            },
            copy_rate: 1.5e9,
            grid_timeouts: &[],
        }
    }

    /// MPICH-Madeleine, svn of 2006-12-06, `ch_mad` with fast buffering.
    pub fn mpich_madeleine() -> ImplProfile {
        ImplProfile {
            impl_id: MpiImpl::MpichMadeleine,
            overhead_lan: SimDuration::from_micros(20),
            overhead_wan: SimDuration::from_micros(14),
            eager_threshold: 128 * 1024,
            socket_policy: SocketPolicy::OsAutotune,
            pacing: false,
            data_window_cap: None,
            parallel_streams: None,
            fast_lan: None,
            collectives: CollectiveSuite {
                // MPICH-1 era algorithms: binomial everywhere.
                bcast: BcastAlgo::Binomial,
                allreduce: AllreduceAlgo::RecursiveDoubling,
                large_threshold: u64::MAX,
            },
            copy_rate: 1.5e9,
            grid_timeouts: &["BT", "SP"],
        }
    }

    /// OpenMPI 1.1.4.
    pub fn openmpi() -> ImplProfile {
        ImplProfile {
            impl_id: MpiImpl::OpenMpi,
            overhead_lan: SimDuration::from_micros(4),
            overhead_wan: SimDuration::from_micros(8),
            eager_threshold: 64 * 1024,
            socket_policy: SocketPolicy::Fixed(128 * 1024),
            pacing: false,
            // BTL pipeline: ~8 in-flight 128 kB fragments. Invisible on a
            // LAN; caps large-message bandwidth on the 11.6 ms WAN (Fig. 7).
            data_window_cap: Some(1 << 20),
            parallel_streams: None,
            fast_lan: None,
            collectives: CollectiveSuite {
                bcast: BcastAlgo::ScatterAllgather,
                allreduce: AllreduceAlgo::Rabenseifner,
                large_threshold: 12 * 1024,
            },
            copy_rate: 1.5e9,
            grid_timeouts: &[],
        }
    }
}

impl ImplProfile {
    /// MPICH-G2 (MPICH + Globus Toolkit) — modelled for the paper's §5
    /// extension study: topology-aware collectives, parallel TCP streams
    /// for messages over 512 kB, and the Globus per-message overhead.
    pub fn mpich_g2() -> ImplProfile {
        ImplProfile {
            impl_id: MpiImpl::MpichG2,
            overhead_lan: SimDuration::from_micros(9),
            overhead_wan: SimDuration::from_micros(12),
            eager_threshold: 128 * 1024,
            socket_policy: SocketPolicy::OsAutotune,
            pacing: false,
            data_window_cap: None,
            parallel_streams: Some((512 * 1024, 4)),
            fast_lan: None,
            collectives: CollectiveSuite {
                bcast: BcastAlgo::GridAware,
                allreduce: AllreduceAlgo::GridAware,
                large_threshold: 12 * 1024,
            },
            copy_rate: 1.5e9,
            grid_timeouts: &[],
        }
    }

    /// MPICH-VMI 2.0 — gateways between high-speed fabrics plus
    /// grid-optimised collectives, but no TCP-level optimisation
    /// (Table 1). Modelled for completeness of the feature matrix.
    pub fn mpich_vmi() -> ImplProfile {
        ImplProfile {
            impl_id: MpiImpl::MpichVmi,
            overhead_lan: SimDuration::from_micros(6),
            overhead_wan: SimDuration::from_micros(9),
            eager_threshold: 128 * 1024,
            socket_policy: SocketPolicy::OsAutotune,
            pacing: false,
            data_window_cap: None,
            parallel_streams: None,
            fast_lan: None,
            collectives: CollectiveSuite {
                bcast: BcastAlgo::GridAware,
                allreduce: AllreduceAlgo::GridAware,
                large_threshold: 12 * 1024,
            },
            copy_rate: 1.5e9,
            grid_timeouts: &[],
        }
    }
}

/// The paper's per-implementation tuning knobs (§4.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct Tuning {
    /// Override the eager→rendezvous threshold:
    /// `MPIDI_CH3_EAGER_MAX_MSG_SIZE` (MPICH2), `DEFAULT_SWITCH`
    /// (MPICH-Madeleine), `-mca btl_tcp_eager_limit` (OpenMPI),
    /// `_YAMPI_RSIZE` (GridMPI).
    pub eager_threshold: Option<u64>,
    /// Override the socket buffer request:
    /// `-mca btl_tcp_sndbuf/btl_tcp_rcvbuf` (OpenMPI).
    pub socket_buffer: Option<u64>,
}

impl Tuning {
    /// No overrides: the implementation's defaults.
    pub fn none() -> Tuning {
        Tuning::default()
    }

    /// The paper's ideal eager/rendezvous thresholds (Table 5) together
    /// with the OpenMPI socket-buffer arguments (§4.2.1).
    pub fn paper_tuned(impl_id: MpiImpl) -> Tuning {
        match impl_id {
            MpiImpl::Mpich2 | MpiImpl::MpichMadeleine => Tuning {
                eager_threshold: Some(65 * 1024 * 1024),
                socket_buffer: None,
            },
            MpiImpl::GridMpi => Tuning::none(), // already eager-always
            MpiImpl::OpenMpi => Tuning {
                eager_threshold: Some(32 * 1024 * 1024),
                socket_buffer: Some(4 * 1024 * 1024),
            },
            MpiImpl::MpichG2 | MpiImpl::MpichVmi => Tuning {
                eager_threshold: Some(65 * 1024 * 1024),
                socket_buffer: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_axes_are_encoded() {
        // Long-distance optimisations: only GridMPI paces and only GridMPI
        // has grid-aware collectives.
        for id in MpiImpl::ALL {
            let p = id.profile();
            assert_eq!(p.pacing, id == MpiImpl::GridMpi, "{id:?}");
            assert_eq!(
                p.collectives.bcast == BcastAlgo::GridAware,
                id == MpiImpl::GridMpi
            );
        }
    }

    #[test]
    fn table5_original_thresholds() {
        assert_eq!(ImplProfile::mpich2().eager_threshold, 256 * 1024);
        assert_eq!(ImplProfile::mpich_madeleine().eager_threshold, 128 * 1024);
        assert_eq!(ImplProfile::openmpi().eager_threshold, 64 * 1024);
        assert_eq!(ImplProfile::gridmpi().eager_threshold, u64::MAX);
    }

    #[test]
    fn table4_overheads() {
        // Cluster deltas over raw TCP: +5, +5, +21, +5 µs of Table 4 =
        // 4/4/20/4 µs of software overhead plus ~1 µs of MPI header
        // serialisation in the wire model.
        assert_eq!(ImplProfile::mpich2().overhead_lan.as_micros(), 4);
        assert_eq!(ImplProfile::gridmpi().overhead_lan.as_micros(), 4);
        assert_eq!(ImplProfile::mpich_madeleine().overhead_lan.as_micros(), 20);
        assert_eq!(ImplProfile::openmpi().overhead_lan.as_micros(), 4);
        // Grid: Madeleine's overhead *drops* (14 < 21), the paper's
        // curiosity in Table 4.
        assert!(
            ImplProfile::mpich_madeleine().overhead_wan
                < ImplProfile::mpich_madeleine().overhead_lan
        );
    }

    #[test]
    fn paper_tuning_matches_table5() {
        assert_eq!(
            Tuning::paper_tuned(MpiImpl::Mpich2).eager_threshold,
            Some(65 * 1024 * 1024)
        );
        assert_eq!(
            Tuning::paper_tuned(MpiImpl::OpenMpi).eager_threshold,
            Some(32 * 1024 * 1024)
        );
        assert_eq!(
            Tuning::paper_tuned(MpiImpl::OpenMpi).socket_buffer,
            Some(4 * 1024 * 1024)
        );
        assert_eq!(Tuning::paper_tuned(MpiImpl::GridMpi).eager_threshold, None);
    }

    #[test]
    fn madeleine_grid_timeouts() {
        assert_eq!(ImplProfile::mpich_madeleine().grid_timeouts, &["BT", "SP"]);
    }
}
