//! The shared state of one MPI run: rank placement, per-pair TCP channels,
//! message matching, and the eager / rendezvous wire protocols of Fig. 4.
//!
//! ## Protocol model
//!
//! * **Eager** (`bytes ≤ threshold`): the sender pays its software overhead,
//!   hands `header + bytes` to the TCP channel and returns (buffered-send
//!   semantics). At arrival the envelope either matches a posted receive
//!   (data lands in the application buffer — Fig. 4 arrow 1) or joins the
//!   *unexpected queue*; a receive that matches an unexpected message pays
//!   the extra memory copy (Fig. 4 arrow 2).
//! * **Rendezvous** (`bytes > threshold`): the sender transmits a small
//!   `MPI_Request` control message and blocks. When the matching receive
//!   is posted, the receiver returns an acknowledgement; data then flows
//!   and both sides complete at data arrival. The handshake costs a full
//!   RTT, which is why the paper raises the threshold on the grid
//!   (Table 5).
//!
//! Both control and data messages share the per-(src,dst) TCP channel, so
//! head-of-line blocking across messages is modelled faithfully.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use desim::shard::CrossPost;
use desim::sync::Mutex;
use desim::{completion, Completion, Sched, SimDuration, SimTime, Trigger};
use netsim::{ChannelId, Network, NodeId};

use crate::error::MpiError;
use crate::profile::{ImplProfile, Tuning};
use crate::stats::CommStats;
use crate::trace::TraceEvent;

/// MPI envelope header bytes added to every data message on the wire.
pub const HEADER_BYTES: u64 = 64;
/// Size of rendezvous control messages (request / acknowledgement).
pub const CTRL_BYTES: u64 = 64;

/// What a completed receive reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgInfo {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Deterministic message id assigned at send time (encodes the
    /// directed rank pair and a per-pair sequence number), pairing the
    /// sender's and receiver's trace spans without heuristics.
    pub msg_id: u64,
}

/// Internal receive completion: the envelope plus any deferred copy cost
/// (unexpected-message copy) the receiving process must pay.
pub(crate) struct RecvDone {
    pub info: MsgInfo,
    pub copy: SimDuration,
}

struct PostedRecv {
    /// Unique id, so a timeout can cancel exactly this entry (and only if
    /// it is still posted — a completed receive leaves the queue first,
    /// making the late timeout callback a no-op).
    id: u64,
    sel_src: Option<usize>,
    sel_tag: Option<u64>,
    tx: Trigger<Result<RecvDone, MpiError>>,
}

/// What posting a receive produced: either an unexpected eager message
/// satisfied it on the spot, or it is pending under `id`.
pub(crate) enum Posted {
    Immediate(RecvDone),
    Pending {
        /// Cancellation handle; `None` when the receive already matched a
        /// rendezvous request (the data is in flight — a timeout can no
        /// longer abort it).
        id: Option<u64>,
        rx: Completion<Result<RecvDone, MpiError>>,
    },
}

enum Unexpected {
    Eager {
        src: usize,
        tag: u64,
        bytes: u64,
        msg_id: u64,
    },
    RndvReq {
        src: usize,
        tag: u64,
        bytes: u64,
        msg_id: u64,
        sender_done: Trigger<Result<(), MpiError>>,
    },
}

impl Unexpected {
    fn matches(&self, sel_src: Option<usize>, sel_tag: Option<u64>) -> bool {
        let (src, tag) = match self {
            Unexpected::Eager { src, tag, .. } => (*src, *tag),
            Unexpected::RndvReq { src, tag, .. } => (*src, *tag),
        };
        sel_src.is_none_or(|s| s == src) && sel_tag.is_none_or(|t| t == tag)
    }
}

#[derive(Default)]
struct RankMatch {
    unexpected: VecDeque<Unexpected>,
    posted: VecDeque<PostedRecv>,
}

/// Shared state of one MPI world (all ranks of one run).
pub(crate) struct WorldInner {
    /// The reference network (execution group 0's). Topology queries go
    /// here; flows go through [`Self::net_of`], which is the same handle
    /// in classic mode.
    pub net: Network,
    /// Per-execution-group flow engines. Classic mode: one entry, the
    /// reference network. PDES mode: one per logical group, each over a
    /// clone of the same topology; a directed channel `src → dst` lives
    /// in `src`'s group's engine.
    nets: Vec<Network>,
    /// Rank → execution-group index (all zero in classic mode).
    exec_group: Vec<usize>,
    /// The PDES cross-group mail fabric (`None` in classic mode).
    cross: Option<CrossPost>,
    /// Directed link → owning execution group, filled at channel
    /// creation. Under `CommPattern::SiteDisjoint` every directed link
    /// must carry flows of one group only; a conflict is a contract
    /// violation and panics. Only consulted with more than one group.
    link_claims: Mutex<HashMap<usize, usize>>,
    pub profile: ImplProfile,
    pub eager_threshold: u64,
    /// Collective-algorithm pins (see [`crate::CollConfig`]); consulted
    /// by the dispatchers in `collectives` before the profile's own
    /// algorithm choice.
    pub coll: crate::collectives::CollConfig,
    pub placement: Vec<NodeId>,
    /// Ranks grouped by site, in order of first appearance.
    pub site_groups: Vec<Vec<usize>>,
    /// Rank → index into `site_groups`.
    pub rank_site: Vec<usize>,
    matchers: Vec<Mutex<RankMatch>>,
    /// Per-rank failure window: `Some((at, until))` means the rank is
    /// dead for virtual times `at ≤ t < until` (`SimTime::MAX` = no
    /// restart). The kill instant is stored so a concurrently-running
    /// group whose clock has not yet reached `at` still reads "alive" —
    /// every group writes the same tuple at virtual time `at`, making
    /// the write idempotent and the read race-free.
    failed: Vec<Mutex<Option<(SimTime, SimTime)>>>,
    next_posted_id: AtomicU64,
    /// Per-directed-pair message sequence counters, keyed `(src, dst)` and
    /// created on first use — dense `n × n` storage would cost O(n²) memory
    /// at rank scale while real traffic touches only O(active pairs).
    /// Ids are assigned at the MPI layer, before any network timing, so
    /// they are identical with the TCP fast path on or off.
    msg_seq: Mutex<HashMap<(usize, usize), u64>>,
    channels: Mutex<HashMap<(usize, usize, u32), ChannelId>>,
    pub stats: Mutex<CommStats>,
    pub records: Mutex<Vec<(usize, String, f64)>>,
    /// Traced spans (populated only when tracing is enabled).
    pub trace: Option<Mutex<Vec<TraceEvent>>>,
    /// Per-group observability sinks: every traced-or-not MPI span and
    /// app-phase marker is forwarded to the emitting rank's group's sink
    /// when set (classic mode: one sink). Read-only taps; recording never
    /// touches the simulation.
    obs_groups: Vec<Option<Arc<dyn desim::obs::Recorder>>>,
}

impl WorldInner {
    /// Classic single-kernel world: one flow engine, one group.
    pub fn new(
        net: Network,
        placement: Vec<NodeId>,
        profile: ImplProfile,
        tuning: Tuning,
        coll: crate::collectives::CollConfig,
        tracing: bool,
        obs: Option<Arc<dyn desim::obs::Recorder>>,
    ) -> Arc<WorldInner> {
        let n = placement.len();
        Self::new_grouped(
            vec![net],
            vec![0; n],
            placement,
            profile,
            tuning,
            coll,
            tracing,
            vec![obs],
            None,
        )
    }

    /// A world partitioned into execution groups for the PDES driver.
    /// `nets`, `obs_groups` are per-group (same length); `exec_group`
    /// maps each rank to its group; `cross` is the driver's mail fabric.
    #[allow(clippy::too_many_arguments)] // construction-time wiring, deliberately flat
    pub fn new_grouped(
        nets: Vec<Network>,
        exec_group: Vec<usize>,
        placement: Vec<NodeId>,
        profile: ImplProfile,
        tuning: Tuning,
        coll: crate::collectives::CollConfig,
        tracing: bool,
        obs_groups: Vec<Option<Arc<dyn desim::obs::Recorder>>>,
        cross: Option<CrossPost>,
    ) -> Arc<WorldInner> {
        assert_eq!(nets.len(), obs_groups.len(), "one sink slot per group");
        let net = nets[0].clone();
        let eager_threshold = tuning.eager_threshold.unwrap_or(profile.eager_threshold);
        let mut profile = profile;
        if let Some(buf) = tuning.socket_buffer {
            profile.socket_policy = crate::profile::SocketPolicy::Fixed(buf);
        }
        let n = placement.len();
        let mut site_groups: Vec<(netsim::SiteId, Vec<usize>)> = Vec::new();
        let mut rank_site = Vec::with_capacity(n);
        for (r, &node) in placement.iter().enumerate() {
            let s = net.site_of(node);
            match site_groups.iter_mut().position(|(sid, _)| *sid == s) {
                Some(i) => {
                    site_groups[i].1.push(r);
                    rank_site.push(i);
                }
                None => {
                    site_groups.push((s, vec![r]));
                    rank_site.push(site_groups.len() - 1);
                }
            }
        }
        let site_groups = site_groups.into_iter().map(|(_, g)| g).collect();
        Arc::new(WorldInner {
            net,
            nets,
            exec_group,
            cross,
            link_claims: Mutex::new(HashMap::new()),
            profile,
            eager_threshold,
            coll,
            placement,
            site_groups,
            rank_site,
            matchers: (0..n).map(|_| Mutex::new(RankMatch::default())).collect(),
            failed: (0..n).map(|_| Mutex::new(None)).collect(),
            next_posted_id: AtomicU64::new(1),
            msg_seq: Mutex::new(HashMap::new()),
            channels: Mutex::new(HashMap::new()),
            stats: Mutex::new(CommStats::default()),
            records: Mutex::new(Vec::new()),
            trace: tracing.then(|| Mutex::new(Vec::new())),
            obs_groups,
        })
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.placement.len()
    }

    /// The execution group a rank runs in (0 for everyone in classic mode).
    pub fn group_of(&self, rank: usize) -> usize {
        self.exec_group[rank]
    }

    /// True if both ranks execute in the same group (always, classically).
    fn same_group(&self, a: usize, b: usize) -> bool {
        self.exec_group[a] == self.exec_group[b]
    }

    /// The flow engine owning flows that *originate* at `rank`.
    fn net_of(&self, rank: usize) -> &Network {
        &self.nets[self.exec_group[rank]]
    }

    /// Group `g`'s flow engine.
    pub fn net_of_group(&self, g: usize) -> &Network {
        &self.nets[g]
    }

    /// The observability sink for events emitted by `rank`'s group.
    pub fn obs_of(&self, rank: usize) -> Option<&Arc<dyn desim::obs::Recorder>> {
        self.obs_groups[self.exec_group[rank]].as_ref()
    }

    /// The PDES mail fabric (panics in classic mode — cross-group traffic
    /// cannot arise there, since everyone is in group 0).
    fn cross_fabric(&self) -> &CrossPost {
        self.cross
            .as_ref()
            .expect("cross-group traffic outside pdes mode")
    }

    /// One-way wire latency from `src`'s node to `dst`'s node — by
    /// construction at least the PDES lookahead when the ranks are in
    /// different groups.
    fn one_way(&self, src: usize, dst: usize) -> SimDuration {
        let rtt = self.net.rtt(self.placement[src], self.placement[dst]);
        SimDuration::from_nanos(rtt.as_nanos() / 2)
    }

    /// Record that `src`'s group owns every directed link of the
    /// `src → dst` route, panicking if another group claimed one already
    /// (the `SiteDisjoint` contract audit). No-op with a single group.
    fn claim_links(&self, src: usize, dst: usize, fast: bool) {
        if self.nets.len() <= 1 {
            return;
        }
        let owner = self.exec_group[src];
        let (a, b) = (self.placement[src], self.placement[dst]);
        let links: Vec<usize> = self.net_of(src).with_topology(|t| {
            let path = if fast {
                t.route_fast(a, b)
            } else {
                Some(t.route(a, b))
            };
            path.map(|p| p.links.iter().map(|l| l.index()).collect())
                .unwrap_or_default()
        });
        let mut claims = self.link_claims.lock();
        for l in links {
            if let Some(prev) = claims.insert(l, owner) {
                assert!(
                    prev == owner,
                    "CommPattern::SiteDisjoint violated: directed link {l} carries \
                     flows of groups {prev} and {owner} (channel rank{src} -> rank{dst}); \
                     run this workload with CommPattern::General"
                );
            }
        }
    }

    /// Allocate the next message id for the directed pair `src → dst`:
    /// the pair index in the high 32 bits, a 1-based per-pair sequence
    /// number in the low 32. Never 0, so 0 can mean "no message".
    pub(crate) fn next_msg_id(&self, src: usize, dst: usize) -> u64 {
        let pair = src * self.size() + dst;
        let mut g = self.msg_seq.lock();
        let seq = g.entry((src, dst)).or_insert(0);
        *seq += 1;
        ((pair as u64) << 32) | (*seq & 0xffff_ffff)
    }

    /// True if the two ranks live on different sites (WAN path).
    pub fn is_wan(&self, a: usize, b: usize) -> bool {
        self.net.site_of(self.placement[a]) != self.net.site_of(self.placement[b])
    }

    /// Per-message software overhead between two ranks (Table 4), plus the
    /// heterogeneity-management cost when the message rides the fast
    /// fabric.
    pub fn overhead(&self, src: usize, dst: usize) -> SimDuration {
        if self.is_wan(src, dst) {
            self.profile.overhead_wan
        } else {
            let mut o = self.profile.overhead_lan;
            if let Some(gateway) = self.profile.fast_lan {
                if self.net.with_topology(|t| {
                    t.route_fast(self.placement[src], self.placement[dst])
                        .is_some()
                }) {
                    o += gateway;
                }
            }
            o
        }
    }

    /// The lazily-created TCP channel from `src` to `dst`.
    pub fn channel(&self, src: usize, dst: usize) -> ChannelId {
        self.channel_stream(src, dst, 0)
    }

    /// One of the parallel sockets between a pair (stream 0 carries
    /// control traffic and unstriped data).
    fn channel_stream(&self, src: usize, dst: usize, stream: u32) -> ChannelId {
        let mut g = self.channels.lock();
        *g.entry((src, dst, stream)).or_insert_with(|| {
            let net = self.net_of(src);
            if self.profile.fast_lan.is_some() {
                if let Some(ch) = net.fast_channel(self.placement[src], self.placement[dst]) {
                    self.claim_links(src, dst, true);
                    return ch;
                }
            }
            let req = self.profile.socket_policy.request();
            let ch = net.channel_with(
                self.placement[src],
                self.placement[dst],
                req,
                req,
                self.profile.pacing,
                self.profile.data_window_cap,
            );
            self.claim_links(src, dst, false);
            ch
        })
    }

    /// Move `bytes` of user data (plus header) from `src` to `dst`,
    /// invoking `done` when the last byte has arrived. Messages above the
    /// profile's parallel-stream threshold are striped over several TCP
    /// connections (MPICH-G2, §2.1.5); the callback fires when every
    /// stripe has landed.
    fn data_transfer(
        self: &Arc<Self>,
        s: &Sched,
        src: usize,
        dst: usize,
        bytes: u64,
        done: impl FnOnce(&Sched) + Send + 'static,
    ) {
        let streams = match self.profile.parallel_streams {
            Some((threshold, k)) if bytes > threshold && k > 1 => k,
            _ => 1,
        };
        debug_assert!(
            self.same_group(src, dst),
            "cross-group data uses data_transfer_finish"
        );
        if streams == 1 {
            let ch = self.channel_stream(src, dst, 0);
            self.net_of(src)
                .transfer_then(s, ch, bytes + HEADER_BYTES, done);
            return;
        }
        let chunk = bytes / streams as u64;
        let pending = Arc::new(Mutex::new((streams, Some(done))));
        for k in 0..streams {
            let this_chunk = if k == streams - 1 {
                bytes - chunk * (streams as u64 - 1)
            } else {
                chunk
            };
            let ch = self.channel_stream(src, dst, k);
            let pending = Arc::clone(&pending);
            self.net_of(src)
                .transfer_then(s, ch, this_chunk + HEADER_BYTES, move |s2| {
                    let mut g = pending.lock();
                    g.0 -= 1;
                    if g.0 == 0 {
                        let done = g.1.take().expect("stripe callback pending");
                        drop(g);
                        done(s2);
                    }
                });
        }
    }

    /// Cross-group sibling of [`Self::data_transfer`]: moves the same
    /// bytes over the same (possibly striped) channels, but `finish(s,
    /// arrival)` runs in the *source* group at wire-finish time carrying
    /// the arrival stamp, so the caller can split completions between the
    /// sender's group (a local `call_at(arrival, …)`) and the receiver's
    /// group (cross mail at `arrival`). `arrival − finish` is at least
    /// the path's one-way latency, which is at least the driver's
    /// lookahead — the cross mail is always causally safe.
    fn data_transfer_finish(
        self: &Arc<Self>,
        s: &Sched,
        src: usize,
        dst: usize,
        bytes: u64,
        finish: impl FnOnce(&Sched, SimTime) + Send + 'static,
    ) {
        let streams = match self.profile.parallel_streams {
            Some((threshold, k)) if bytes > threshold && k > 1 => k,
            _ => 1,
        };
        if streams == 1 {
            let ch = self.channel_stream(src, dst, 0);
            self.net_of(src)
                .transfer_finish_then(s, ch, bytes + HEADER_BYTES, finish);
            return;
        }
        let chunk = bytes / streams as u64;
        // (remaining stripes, latest arrival, the callback).
        let pending = Arc::new(Mutex::new((streams, SimTime::ZERO, Some(finish))));
        for k in 0..streams {
            let this_chunk = if k == streams - 1 {
                bytes - chunk * (streams as u64 - 1)
            } else {
                chunk
            };
            let ch = self.channel_stream(src, dst, k);
            let pending = Arc::clone(&pending);
            self.net_of(src).transfer_finish_then(
                s,
                ch,
                this_chunk + HEADER_BYTES,
                move |s2, arrival| {
                    let mut g = pending.lock();
                    g.0 -= 1;
                    g.1 = g.1.max(arrival);
                    if g.0 == 0 {
                        let finish = g.2.take().expect("stripe callback pending");
                        let last_arrival = g.1;
                        drop(g);
                        finish(s2, last_arrival);
                    }
                },
            );
        }
    }

    /// Start an eager transmission (sender does not block).
    pub fn eager_send(
        self: &Arc<Self>,
        s: &Sched,
        src: usize,
        dst: usize,
        tag: u64,
        bytes: u64,
        msg_id: u64,
    ) {
        let w = Arc::clone(self);
        if self.same_group(src, dst) {
            self.data_transfer(s, src, dst, bytes, move |s2| {
                w.deliver_eager(s2, src, dst, tag, bytes, msg_id)
            });
        } else {
            let cross = self.cross_fabric().clone();
            let (from, to) = (self.exec_group[src], self.exec_group[dst]);
            self.data_transfer_finish(s, src, dst, bytes, move |_s2, arrival| {
                cross.post(from, to, arrival, move |s3| {
                    w.deliver_eager(s3, src, dst, tag, bytes, msg_id)
                });
            });
        }
    }

    #[allow(clippy::too_many_arguments)] // protocol state, deliberately flat
    fn deliver_eager(&self, s: &Sched, src: usize, dst: usize, tag: u64, bytes: u64, msg_id: u64) {
        if self.rank_failed(dst, s.now()) {
            // The destination is dead: the message vanishes on its NIC
            // (buffered-send semantics — the sender completed long ago).
            self.emit_fault(s, dst, "msg_dropped", dst as u64, bytes as f64);
            return;
        }
        let mut m = self.matchers[dst].lock();
        if let Some(pos) = m
            .posted
            .iter()
            .position(|p| p.sel_src.is_none_or(|x| x == src) && p.sel_tag.is_none_or(|t| t == tag))
        {
            let pr = m.posted.remove(pos).expect("position valid");
            drop(m);
            pr.tx.fire_from(
                s,
                Ok(RecvDone {
                    info: MsgInfo {
                        src,
                        tag,
                        bytes,
                        msg_id,
                    },
                    copy: SimDuration::ZERO,
                }),
            );
        } else {
            m.unexpected.push_back(Unexpected::Eager {
                src,
                tag,
                bytes,
                msg_id,
            });
        }
    }

    /// Start a rendezvous transmission; the returned completion fires (for
    /// the sender) once the data has been delivered.
    #[allow(clippy::too_many_arguments)] // protocol state, deliberately flat
    pub fn rndv_send(
        self: &Arc<Self>,
        s: &Sched,
        src: usize,
        dst: usize,
        tag: u64,
        bytes: u64,
        msg_id: u64,
    ) -> Completion<Result<(), MpiError>> {
        let (stx, srx) = completion();
        let ch = self.channel(src, dst);
        let w = Arc::clone(self);
        if self.same_group(src, dst) {
            self.net_of(src)
                .transfer_then(s, ch, CTRL_BYTES, move |s2| {
                    w.deliver_rndv_req(s2, src, dst, tag, bytes, msg_id, stx)
                });
        } else {
            let cross = self.cross_fabric().clone();
            let (from, to) = (self.exec_group[src], self.exec_group[dst]);
            self.net_of(src)
                .transfer_finish_then(s, ch, CTRL_BYTES, move |_s2, arrival| {
                    cross.post(from, to, arrival, move |s3| {
                        w.deliver_rndv_req(s3, src, dst, tag, bytes, msg_id, stx)
                    });
                });
        }
        srx
    }

    #[allow(clippy::too_many_arguments)] // protocol state, deliberately flat
    fn deliver_rndv_req(
        self: &Arc<Self>,
        s: &Sched,
        src: usize,
        dst: usize,
        tag: u64,
        bytes: u64,
        msg_id: u64,
        sender_done: Trigger<Result<(), MpiError>>,
    ) {
        if self.rank_failed(dst, s.now()) {
            // The handshake request reached a dead receiver: the sender's
            // blocking send aborts with a typed error instead of hanging.
            self.emit_fault(s, dst, "msg_dropped", dst as u64, bytes as f64);
            if self.same_group(src, dst) {
                sender_done.fire_from(s, Err(MpiError::PeerFailed { rank: dst }));
            } else {
                // The abort notice rides the wire back to the sender's
                // group — one-way latency keeps the mail causally safe.
                let cross = self.cross_fabric().clone();
                let (from, to) = (self.exec_group[dst], self.exec_group[src]);
                let at = s.now() + self.one_way(dst, src);
                cross.post(from, to, at, move |s2| {
                    sender_done.fire_from(s2, Err(MpiError::PeerFailed { rank: dst }));
                });
            }
            return;
        }
        let mut m = self.matchers[dst].lock();
        if let Some(pos) = m
            .posted
            .iter()
            .position(|p| p.sel_src.is_none_or(|x| x == src) && p.sel_tag.is_none_or(|t| t == tag))
        {
            let pr = m.posted.remove(pos).expect("position valid");
            drop(m);
            self.rndv_matched(s, src, dst, tag, bytes, msg_id, sender_done, pr.tx);
        } else {
            m.unexpected.push_back(Unexpected::RndvReq {
                src,
                tag,
                bytes,
                msg_id,
                sender_done,
            });
        }
    }

    /// The receive matching a rendezvous request exists: send the
    /// acknowledgement back, then the bulk data.
    #[allow(clippy::too_many_arguments)] // protocol state, deliberately flat
    fn rndv_matched(
        self: &Arc<Self>,
        s: &Sched,
        src: usize,
        dst: usize,
        tag: u64,
        bytes: u64,
        msg_id: u64,
        sender_done: Trigger<Result<(), MpiError>>,
        recv_tx: Trigger<Result<RecvDone, MpiError>>,
    ) {
        let ack_ch = self.channel(dst, src);
        let w = Arc::clone(self);
        if self.same_group(src, dst) {
            self.net_of(dst)
                .transfer_then(s, ack_ch, CTRL_BYTES, move |s2| {
                    let w2 = Arc::clone(&w);
                    w2.data_transfer(s2, src, dst, bytes, move |s3| {
                        recv_tx.fire_from(
                            s3,
                            Ok(RecvDone {
                                info: MsgInfo {
                                    src,
                                    tag,
                                    bytes,
                                    msg_id,
                                },
                                copy: SimDuration::ZERO,
                            }),
                        );
                        sender_done.fire_from(s3, Ok(()));
                    });
                });
        } else {
            // Cross-group rendezvous: the acknowledgement crosses back to
            // the sender's group, the bulk data leaves from there, and at
            // wire finish the two completions split — the sender's fires
            // locally at arrival, the receiver's crosses as mail stamped
            // with the arrival time.
            let cross = self.cross_fabric().clone();
            let (gd, gs) = (self.exec_group[dst], self.exec_group[src]);
            self.net_of(dst).transfer_finish_then(
                s,
                ack_ch,
                CTRL_BYTES,
                move |_s2, ack_arrival| {
                    cross.post(gd, gs, ack_arrival, move |s3| {
                        let cross_back = w.cross_fabric().clone();
                        let w2 = Arc::clone(&w);
                        w2.data_transfer_finish(s3, src, dst, bytes, move |s4, arrival| {
                            s4.call_at(arrival, move |s5| {
                                sender_done.fire_from(s5, Ok(()));
                            });
                            cross_back.post(gs, gd, arrival, move |s5| {
                                recv_tx.fire_from(
                                    s5,
                                    Ok(RecvDone {
                                        info: MsgInfo {
                                            src,
                                            tag,
                                            bytes,
                                            msg_id,
                                        },
                                        copy: SimDuration::ZERO,
                                    }),
                                );
                            });
                        });
                    });
                },
            );
        }
    }

    /// Post a receive for rank `me`. Returns [`Posted::Immediate`] if an
    /// unexpected eager message satisfies it on the spot, otherwise the
    /// pending completion (plus its id, for timeout cancellation).
    pub fn post_recv(
        self: &Arc<Self>,
        s: &Sched,
        me: usize,
        sel_src: Option<usize>,
        sel_tag: Option<u64>,
    ) -> Posted {
        let mut m = self.matchers[me].lock();
        if let Some(pos) = m
            .unexpected
            .iter()
            .position(|u| u.matches(sel_src, sel_tag))
        {
            let u = m.unexpected.remove(pos).expect("position valid");
            drop(m);
            match u {
                Unexpected::Eager {
                    src,
                    tag,
                    bytes,
                    msg_id,
                } => {
                    // Extra copy out of the temporary MPI buffer (Fig. 4).
                    let copy = SimDuration::from_secs_f64(bytes as f64 / self.profile.copy_rate);
                    Posted::Immediate(RecvDone {
                        info: MsgInfo {
                            src,
                            tag,
                            bytes,
                            msg_id,
                        },
                        copy,
                    })
                }
                Unexpected::RndvReq {
                    src,
                    tag,
                    bytes,
                    msg_id,
                    sender_done,
                } => {
                    let (rtx, rrx) = completion();
                    self.rndv_matched(s, src, me, tag, bytes, msg_id, sender_done, rtx);
                    Posted::Pending { id: None, rx: rrx }
                }
            }
        } else {
            let id = self.next_posted_id.fetch_add(1, Ordering::Relaxed);
            let (rtx, rrx) = completion();
            m.posted.push_back(PostedRecv {
                id,
                sel_src,
                sel_tag,
                tx: rtx,
            });
            Posted::Pending {
                id: Some(id),
                rx: rrx,
            }
        }
    }

    /// Abort posted receive `id` on rank `me` with a timeout error, if it
    /// is still pending. A receive that completed (and left the posted
    /// queue) in the meantime makes this a no-op — there is no race with a
    /// concurrent match because both paths remove the entry under the
    /// matcher lock.
    pub fn cancel_posted(&self, s: &Sched, me: usize, id: u64, waited: SimDuration) {
        let mut m = self.matchers[me].lock();
        let Some(pos) = m.posted.iter().position(|p| p.id == id) else {
            return;
        };
        let pr = m.posted.remove(pos).expect("position valid");
        drop(m);
        pr.tx
            .fire_from(s, Err(MpiError::Timeout { op: "recv", waited }));
    }

    /// True if `rank` is inside a failure window at `now`.
    ///
    /// The window is stored as `(at, until)` and checked against the
    /// *asking* rank's clock: under PDES another group may host-side
    /// observe the write before its own virtual clock reaches the kill
    /// time, so membership must be a pure function of virtual time.
    pub fn rank_failed(&self, rank: usize, now: SimTime) -> bool {
        self.failed[rank]
            .lock()
            .is_some_and(|(at, until)| at <= now && now < until)
    }

    /// Kill `rank` at the current instant, optionally restarting it at
    /// `until`. Models a fail-stop crash with a perfect failure detector:
    ///
    /// * the dead rank's own posted receives abort with
    ///   [`MpiError::SelfFailed`] (the program observes its death on its
    ///   next fallible call and can exit);
    /// * every other rank's posted receive that *selects* the dead rank as
    ///   its source aborts with [`MpiError::PeerFailed`] — wildcard
    ///   receives stay posted, since another sender may still satisfy
    ///   them;
    /// * rendezvous handshakes parked in the dead rank's unexpected queue
    ///   abort their senders' blocking sends;
    /// * in-flight and future messages addressed to the window are dropped
    ///   on delivery ([`Self::deliver_eager`] / [`Self::deliver_rndv_req`]).
    pub fn fail_rank(self: &Arc<Self>, s: &Sched, rank: usize, until: Option<SimTime>) {
        let until = until.unwrap_or(SimTime::MAX);
        *self.failed[rank].lock() = Some((s.now(), until));
        self.emit_fault(
            s,
            rank,
            "rank_fail",
            rank as u64,
            if until == SimTime::MAX {
                0.0
            } else {
                until.since(s.now()).as_secs_f64()
            },
        );
        // Drain the dead rank's own matcher.
        let (own_posted, own_unexpected) = {
            let mut m = self.matchers[rank].lock();
            let posted: Vec<PostedRecv> = m.posted.drain(..).collect();
            let unexpected: Vec<Unexpected> = m.unexpected.drain(..).collect();
            (posted, unexpected)
        };
        for pr in own_posted {
            pr.tx.fire_from(s, Err(MpiError::SelfFailed));
        }
        for u in own_unexpected {
            if let Unexpected::RndvReq {
                src, sender_done, ..
            } = u
            {
                if self.same_group(src, rank) {
                    sender_done.fire_from(s, Err(MpiError::PeerFailed { rank }));
                } else {
                    // The sender blocks in another group: the abort notice
                    // crosses as mail, delayed by one-way latency so it
                    // lands beyond the lookahead horizon.
                    let cross = self.cross_fabric().clone();
                    let (from, to) = (self.exec_group[rank], self.exec_group[src]);
                    let at = s.now() + self.one_way(rank, src);
                    cross.post(from, to, at, move |s2| {
                        sender_done.fire_from(s2, Err(MpiError::PeerFailed { rank }));
                    });
                }
            }
        }
        // Abort this group's source-selected receives on the dead rank;
        // other groups run the lite path at the same virtual instant.
        self.abort_selected_on(s, self.exec_group[rank], rank);
        if until != SimTime::MAX {
            let w = Arc::clone(self);
            s.call_at(until, move |s2| {
                w.emit_fault(s2, rank, "rank_restart", rank as u64, 0.0);
            });
        }
    }

    /// The non-owning-group half of a rank failure under PDES: every group
    /// schedules this at the same virtual instant the owning group runs
    /// [`Self::fail_rank`]. It writes the identical `(at, until)` window
    /// (idempotent) and aborts *this* group's source-selected receives on
    /// the dead rank; emission, matcher drain, and restart bookkeeping
    /// stay with the owning group.
    pub fn fail_rank_lite(
        self: &Arc<Self>,
        s: &Sched,
        group: usize,
        rank: usize,
        until: Option<SimTime>,
    ) {
        let until = until.unwrap_or(SimTime::MAX);
        *self.failed[rank].lock() = Some((s.now(), until));
        self.abort_selected_on(s, group, rank);
    }

    /// Abort posted receives that select `rank` as their source, restricted
    /// to receivers executing in `group` (wildcard receives stay posted —
    /// another sender may still satisfy them).
    fn abort_selected_on(&self, s: &Sched, group: usize, rank: usize) {
        for (r, matcher) in self.matchers.iter().enumerate() {
            if r == rank || self.exec_group[r] != group {
                continue;
            }
            let aborted: Vec<PostedRecv> = {
                let mut m = matcher.lock();
                let mut out = Vec::new();
                let mut keep = VecDeque::with_capacity(m.posted.len());
                for pr in m.posted.drain(..) {
                    if pr.sel_src == Some(rank) {
                        out.push(pr);
                    } else {
                        keep.push_back(pr);
                    }
                }
                m.posted = keep;
                out
            };
            for pr in aborted {
                pr.tx.fire_from(s, Err(MpiError::PeerFailed { rank }));
            }
        }
    }

    /// Forward a fault event to `rank`'s group's observability bus (no-op
    /// without a recorder; never touches the simulation).
    pub(crate) fn emit_fault(
        &self,
        s: &Sched,
        rank: usize,
        kind: &'static str,
        subject: u64,
        info: f64,
    ) {
        if let Some(rec) = self.obs_of(rank) {
            rec.record(&desim::obs::Event::Fault {
                kind,
                subject,
                t_ns: s.now().as_nanos(),
                info,
            });
        }
    }

    /// True if nothing is pending anywhere (used by tests to assert
    /// quiescence at the end of a run).
    pub fn quiescent(&self) -> bool {
        self.matchers.iter().all(|m| {
            let g = m.lock();
            g.unexpected.is_empty() && g.posted.is_empty()
        })
    }
}
