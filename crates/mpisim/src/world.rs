//! The shared state of one MPI run: rank placement, per-pair TCP channels,
//! message matching, and the eager / rendezvous wire protocols of Fig. 4.
//!
//! ## Protocol model
//!
//! * **Eager** (`bytes ≤ threshold`): the sender pays its software overhead,
//!   hands `header + bytes` to the TCP channel and returns (buffered-send
//!   semantics). At arrival the envelope either matches a posted receive
//!   (data lands in the application buffer — Fig. 4 arrow 1) or joins the
//!   *unexpected queue*; a receive that matches an unexpected message pays
//!   the extra memory copy (Fig. 4 arrow 2).
//! * **Rendezvous** (`bytes > threshold`): the sender transmits a small
//!   `MPI_Request` control message and blocks. When the matching receive
//!   is posted, the receiver returns an acknowledgement; data then flows
//!   and both sides complete at data arrival. The handshake costs a full
//!   RTT, which is why the paper raises the threshold on the grid
//!   (Table 5).
//!
//! Both control and data messages share the per-(src,dst) TCP channel, so
//! head-of-line blocking across messages is modelled faithfully.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use desim::sync::Mutex;
use desim::{completion, Completion, Sched, SimDuration, Trigger};
use netsim::{ChannelId, Network, NodeId};

use crate::profile::{ImplProfile, Tuning};
use crate::stats::CommStats;
use crate::trace::TraceEvent;

/// MPI envelope header bytes added to every data message on the wire.
pub const HEADER_BYTES: u64 = 64;
/// Size of rendezvous control messages (request / acknowledgement).
pub const CTRL_BYTES: u64 = 64;

/// What a completed receive reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgInfo {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: u64,
    /// Payload bytes.
    pub bytes: u64,
}

/// Internal receive completion: the envelope plus any deferred copy cost
/// (unexpected-message copy) the receiving process must pay.
pub(crate) struct RecvDone {
    pub info: MsgInfo,
    pub copy: SimDuration,
}

struct PostedRecv {
    sel_src: Option<usize>,
    sel_tag: Option<u64>,
    tx: Trigger<RecvDone>,
}

enum Unexpected {
    Eager {
        src: usize,
        tag: u64,
        bytes: u64,
    },
    RndvReq {
        src: usize,
        tag: u64,
        bytes: u64,
        sender_done: Trigger<()>,
    },
}

impl Unexpected {
    fn matches(&self, sel_src: Option<usize>, sel_tag: Option<u64>) -> bool {
        let (src, tag) = match self {
            Unexpected::Eager { src, tag, .. } => (*src, *tag),
            Unexpected::RndvReq { src, tag, .. } => (*src, *tag),
        };
        sel_src.is_none_or(|s| s == src) && sel_tag.is_none_or(|t| t == tag)
    }
}

#[derive(Default)]
struct RankMatch {
    unexpected: VecDeque<Unexpected>,
    posted: VecDeque<PostedRecv>,
}

/// Shared state of one MPI world (all ranks of one run).
pub(crate) struct WorldInner {
    pub net: Network,
    pub profile: ImplProfile,
    pub eager_threshold: u64,
    pub placement: Vec<NodeId>,
    /// Ranks grouped by site, in order of first appearance.
    pub site_groups: Vec<Vec<usize>>,
    /// Rank → index into `site_groups`.
    pub rank_site: Vec<usize>,
    matchers: Vec<Mutex<RankMatch>>,
    channels: Mutex<HashMap<(usize, usize, u32), ChannelId>>,
    pub stats: Mutex<CommStats>,
    pub records: Mutex<Vec<(usize, String, f64)>>,
    /// Traced spans (populated only when tracing is enabled).
    pub trace: Option<Mutex<Vec<TraceEvent>>>,
    /// Observability sink: every traced-or-not MPI span and app-phase
    /// marker is forwarded here when set. Read-only taps; recording never
    /// touches the simulation.
    pub obs: Option<Arc<dyn desim::obs::Recorder>>,
}

impl WorldInner {
    pub fn new(
        net: Network,
        placement: Vec<NodeId>,
        profile: ImplProfile,
        tuning: Tuning,
        tracing: bool,
        obs: Option<Arc<dyn desim::obs::Recorder>>,
    ) -> Arc<WorldInner> {
        let eager_threshold = tuning.eager_threshold.unwrap_or(profile.eager_threshold);
        let mut profile = profile;
        if let Some(buf) = tuning.socket_buffer {
            profile.socket_policy = crate::profile::SocketPolicy::Fixed(buf);
        }
        let n = placement.len();
        let mut site_groups: Vec<(netsim::SiteId, Vec<usize>)> = Vec::new();
        let mut rank_site = Vec::with_capacity(n);
        for (r, &node) in placement.iter().enumerate() {
            let s = net.site_of(node);
            match site_groups.iter_mut().position(|(sid, _)| *sid == s) {
                Some(i) => {
                    site_groups[i].1.push(r);
                    rank_site.push(i);
                }
                None => {
                    site_groups.push((s, vec![r]));
                    rank_site.push(site_groups.len() - 1);
                }
            }
        }
        let site_groups = site_groups.into_iter().map(|(_, g)| g).collect();
        Arc::new(WorldInner {
            net,
            profile,
            eager_threshold,
            placement,
            site_groups,
            rank_site,
            matchers: (0..n).map(|_| Mutex::new(RankMatch::default())).collect(),
            channels: Mutex::new(HashMap::new()),
            stats: Mutex::new(CommStats::default()),
            records: Mutex::new(Vec::new()),
            trace: tracing.then(|| Mutex::new(Vec::new())),
            obs,
        })
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.placement.len()
    }

    /// True if the two ranks live on different sites (WAN path).
    pub fn is_wan(&self, a: usize, b: usize) -> bool {
        self.net.site_of(self.placement[a]) != self.net.site_of(self.placement[b])
    }

    /// Per-message software overhead between two ranks (Table 4), plus the
    /// heterogeneity-management cost when the message rides the fast
    /// fabric.
    pub fn overhead(&self, src: usize, dst: usize) -> SimDuration {
        if self.is_wan(src, dst) {
            self.profile.overhead_wan
        } else {
            let mut o = self.profile.overhead_lan;
            if let Some(gateway) = self.profile.fast_lan {
                if self.net.with_topology(|t| {
                    t.route_fast(self.placement[src], self.placement[dst])
                        .is_some()
                }) {
                    o += gateway;
                }
            }
            o
        }
    }

    /// The lazily-created TCP channel from `src` to `dst`.
    pub fn channel(&self, src: usize, dst: usize) -> ChannelId {
        self.channel_stream(src, dst, 0)
    }

    /// One of the parallel sockets between a pair (stream 0 carries
    /// control traffic and unstriped data).
    fn channel_stream(&self, src: usize, dst: usize, stream: u32) -> ChannelId {
        let mut g = self.channels.lock();
        *g.entry((src, dst, stream)).or_insert_with(|| {
            if self.profile.fast_lan.is_some() {
                if let Some(ch) = self
                    .net
                    .fast_channel(self.placement[src], self.placement[dst])
                {
                    return ch;
                }
            }
            let req = self.profile.socket_policy.request();
            self.net.channel_with(
                self.placement[src],
                self.placement[dst],
                req,
                req,
                self.profile.pacing,
                self.profile.data_window_cap,
            )
        })
    }

    /// Move `bytes` of user data (plus header) from `src` to `dst`,
    /// invoking `done` when the last byte has arrived. Messages above the
    /// profile's parallel-stream threshold are striped over several TCP
    /// connections (MPICH-G2, §2.1.5); the callback fires when every
    /// stripe has landed.
    fn data_transfer(
        self: &Arc<Self>,
        s: &Sched,
        src: usize,
        dst: usize,
        bytes: u64,
        done: impl FnOnce(&Sched) + Send + 'static,
    ) {
        let streams = match self.profile.parallel_streams {
            Some((threshold, k)) if bytes > threshold && k > 1 => k,
            _ => 1,
        };
        if streams == 1 {
            let ch = self.channel_stream(src, dst, 0);
            self.net.transfer_then(s, ch, bytes + HEADER_BYTES, done);
            return;
        }
        let chunk = bytes / streams as u64;
        let pending = Arc::new(Mutex::new((streams, Some(done))));
        for k in 0..streams {
            let this_chunk = if k == streams - 1 {
                bytes - chunk * (streams as u64 - 1)
            } else {
                chunk
            };
            let ch = self.channel_stream(src, dst, k);
            let pending = Arc::clone(&pending);
            self.net
                .transfer_then(s, ch, this_chunk + HEADER_BYTES, move |s2| {
                    let mut g = pending.lock();
                    g.0 -= 1;
                    if g.0 == 0 {
                        let done = g.1.take().expect("stripe callback pending");
                        drop(g);
                        done(s2);
                    }
                });
        }
    }

    /// Start an eager transmission (sender does not block).
    pub fn eager_send(self: &Arc<Self>, s: &Sched, src: usize, dst: usize, tag: u64, bytes: u64) {
        let w = Arc::clone(self);
        self.data_transfer(s, src, dst, bytes, move |s2| {
            w.deliver_eager(s2, src, dst, tag, bytes)
        });
    }

    fn deliver_eager(&self, s: &Sched, src: usize, dst: usize, tag: u64, bytes: u64) {
        let mut m = self.matchers[dst].lock();
        if let Some(pos) = m
            .posted
            .iter()
            .position(|p| p.sel_src.is_none_or(|x| x == src) && p.sel_tag.is_none_or(|t| t == tag))
        {
            let pr = m.posted.remove(pos).expect("position valid");
            drop(m);
            pr.tx.fire_from(
                s,
                RecvDone {
                    info: MsgInfo { src, tag, bytes },
                    copy: SimDuration::ZERO,
                },
            );
        } else {
            m.unexpected
                .push_back(Unexpected::Eager { src, tag, bytes });
        }
    }

    /// Start a rendezvous transmission; the returned completion fires (for
    /// the sender) once the data has been delivered.
    pub fn rndv_send(
        self: &Arc<Self>,
        s: &Sched,
        src: usize,
        dst: usize,
        tag: u64,
        bytes: u64,
    ) -> Completion<()> {
        let (stx, srx) = completion();
        let ch = self.channel(src, dst);
        let w = Arc::clone(self);
        self.net.transfer_then(s, ch, CTRL_BYTES, move |s2| {
            w.deliver_rndv_req(s2, src, dst, tag, bytes, stx)
        });
        srx
    }

    fn deliver_rndv_req(
        self: &Arc<Self>,
        s: &Sched,
        src: usize,
        dst: usize,
        tag: u64,
        bytes: u64,
        sender_done: Trigger<()>,
    ) {
        let mut m = self.matchers[dst].lock();
        if let Some(pos) = m
            .posted
            .iter()
            .position(|p| p.sel_src.is_none_or(|x| x == src) && p.sel_tag.is_none_or(|t| t == tag))
        {
            let pr = m.posted.remove(pos).expect("position valid");
            drop(m);
            self.rndv_matched(s, src, dst, tag, bytes, sender_done, pr.tx);
        } else {
            m.unexpected.push_back(Unexpected::RndvReq {
                src,
                tag,
                bytes,
                sender_done,
            });
        }
    }

    /// The receive matching a rendezvous request exists: send the
    /// acknowledgement back, then the bulk data.
    #[allow(clippy::too_many_arguments)] // protocol state, deliberately flat
    fn rndv_matched(
        self: &Arc<Self>,
        s: &Sched,
        src: usize,
        dst: usize,
        tag: u64,
        bytes: u64,
        sender_done: Trigger<()>,
        recv_tx: Trigger<RecvDone>,
    ) {
        let ack_ch = self.channel(dst, src);
        let w = Arc::clone(self);
        self.net.transfer_then(s, ack_ch, CTRL_BYTES, move |s2| {
            let w2 = Arc::clone(&w);
            w2.data_transfer(s2, src, dst, bytes, move |s3| {
                recv_tx.fire_from(
                    s3,
                    RecvDone {
                        info: MsgInfo { src, tag, bytes },
                        copy: SimDuration::ZERO,
                    },
                );
                sender_done.fire_from(s3, ());
            });
        });
    }

    /// Post a receive for rank `me`. Returns `Ok` if an unexpected eager
    /// message satisfies it immediately, otherwise the completion to wait
    /// on.
    pub fn post_recv(
        self: &Arc<Self>,
        s: &Sched,
        me: usize,
        sel_src: Option<usize>,
        sel_tag: Option<u64>,
    ) -> Result<RecvDone, Completion<RecvDone>> {
        let mut m = self.matchers[me].lock();
        if let Some(pos) = m
            .unexpected
            .iter()
            .position(|u| u.matches(sel_src, sel_tag))
        {
            let u = m.unexpected.remove(pos).expect("position valid");
            drop(m);
            match u {
                Unexpected::Eager { src, tag, bytes } => {
                    // Extra copy out of the temporary MPI buffer (Fig. 4).
                    let copy = SimDuration::from_secs_f64(bytes as f64 / self.profile.copy_rate);
                    Ok(RecvDone {
                        info: MsgInfo { src, tag, bytes },
                        copy,
                    })
                }
                Unexpected::RndvReq {
                    src,
                    tag,
                    bytes,
                    sender_done,
                } => {
                    let (rtx, rrx) = completion();
                    self.rndv_matched(s, src, me, tag, bytes, sender_done, rtx);
                    Err(rrx)
                }
            }
        } else {
            let (rtx, rrx) = completion();
            m.posted.push_back(PostedRecv {
                sel_src,
                sel_tag,
                tx: rtx,
            });
            Err(rrx)
        }
    }

    /// True if nothing is pending anywhere (used by tests to assert
    /// quiescence at the end of a run).
    pub fn quiescent(&self) -> bool {
        self.matchers.iter().all(|m| {
            let g = m.lock();
            g.unexpected.is_empty() && g.posted.is_empty()
        })
    }
}
