//! The `mpirun` analogue: place ranks on nodes, apply a profile and
//! tuning, execute an SPMD program, and collect the run report.
//!
//! Execution has two drivers behind one front door
//! ([`MpiJob::with_exec`]):
//!
//! * **classic** (`shards: None`) — one event queue, one kernel; the
//!   pre-PDES code path, byte-for-byte.
//! * **pdes** (`shards: Some(n)`) — the world is partitioned into logical
//!   groups (a pure function of topology, placement and
//!   [`crate::exec::CommPattern`]), each group runs its own kernel, and a
//!   conservative windowed driver ([`desim::ShardedSim`]) advances them
//!   in lock-step rounds bounded by the WAN one-way lookahead. `n` sets
//!   only the *worker-thread* count — results are bit-identical for any
//!   `n ≥ 1`, because the partition (and the deterministic cross-group
//!   mail merge) never depends on it.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;

use desim::fault::{FaultKind, FaultPlan};
use desim::obs::{Obs, Recorder};
use desim::shard::{merge_events, GroupBuffer, ShardedSim};
use desim::{Cx, Sim, SimDuration, SimError, SimTime};

use netsim::{Network, NodeId};

use crate::exec::{self, ExecConfig};
use crate::profile::{ImplProfile, MpiImpl, Tuning};
use crate::rank::RankCtx;
use crate::stats::CommStats;
use crate::world::WorldInner;

/// How simulated ranks execute.
///
/// Both engines drive the same rank programs through the same event queue
/// and produce bit-identical event streams and virtual times (the golden
/// digest suite pins this); they differ only in host-side mechanics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// One parked OS thread per rank; every blocking MPI call costs two
    /// context switches. Kept as the determinism oracle while the pooled
    /// engine is new; caps worlds at a few thousand ranks.
    Threaded,
    /// Ranks are stackless continuations multiplexed onto the kernel's
    /// dispatch loop: no thread per rank, no context switch per call.
    /// Scales to tens of thousands of ranks in one process. The default.
    Pooled,
}

impl Engine {
    /// Parse an `MPISIM_ENGINE` value: the engine to use, plus a warning
    /// message when the value is not one of the accepted spellings. Pure,
    /// so the unknown-value behaviour is testable without touching the
    /// process environment.
    fn resolve(val: Option<&str>) -> (Engine, Option<String>) {
        match val {
            Some("threaded") => (Engine::Threaded, None),
            Some("pooled") | None => (Engine::Pooled, None),
            Some(other) => (
                Engine::Pooled,
                Some(format!(
                    "mpisim: unknown MPISIM_ENGINE value {other:?} \
                     (accepted: \"threaded\", \"pooled\"); using pooled"
                )),
            ),
        }
    }

    /// The default engine, honouring the `MPISIM_ENGINE` environment
    /// variable (`threaded` or `pooled`; unset means pooled). An
    /// unrecognised value falls back to pooled and prints a one-time
    /// warning to stderr naming the accepted values — silently ignoring a
    /// typo like `MPISIM_ENGINE=threded` cost real debugging time.
    pub fn from_env() -> Engine {
        let val = std::env::var("MPISIM_ENGINE").ok();
        let (engine, warning) = Engine::resolve(val.as_deref());
        if let Some(msg) = warning {
            static WARNED: std::sync::OnceLock<()> = std::sync::OnceLock::new();
            WARNED.get_or_init(|| eprintln!("{msg}"));
        }
        engine
    }
}

/// An MPI program: SPMD body run by every rank. Implemented automatically
/// for async closures taking the rank's [`RankCtx`] by value:
///
/// ```ignore
/// job.run(|mut ctx: RankCtx| async move {
///     ctx.barrier().await;
/// })
/// ```
pub trait MpiProgram: Send + Sync + 'static {
    /// The per-rank body, as a boxed future (the engine decides how to
    /// drive it).
    fn run(&self, ctx: RankCtx) -> Pin<Box<dyn Future<Output = ()> + Send + 'static>>;
}

impl<F, Fut> MpiProgram for F
where
    F: Fn(RankCtx) -> Fut + Send + Sync + 'static,
    Fut: Future<Output = ()> + Send + 'static,
{
    fn run(&self, ctx: RankCtx) -> Pin<Box<dyn Future<Output = ()> + Send + 'static>> {
        Box::pin(self(ctx))
    }
}

/// A configured MPI job, ready to [`MpiJob::run`].
pub struct MpiJob {
    /// The network the job runs on.
    pub net: Network,
    /// Rank → node placement.
    pub placement: Vec<NodeId>,
    /// Implementation profile.
    pub profile: ImplProfile,
    /// Tuning overrides (§4.2).
    pub tuning: Tuning,
    /// Record per-operation trace spans into the run report.
    pub tracing: bool,
    /// Observability configuration (recorder + host profiler), consumed
    /// once at run start and attached to the network, the kernel(s), and
    /// every rank for the duration of the run.
    pub obs: Obs,
    /// Abort the run (with [`SimError::TimeLimitExceeded`]) if virtual time
    /// passes this limit — the `mpirun` timeout the paper hit with
    /// MPICH-Madeleine on BT/SP ("the application timeout", §4.3).
    pub deadline: Option<SimTime>,
    /// Deterministic fault plan: stochastic segment loss/duplication plus
    /// timed link flaps, NIC stalls, and rank kills. `None` (and the empty
    /// plan) leave every run bit-identical to a fault-free one.
    pub faults: Option<FaultPlan>,
    /// Execution configuration: engine, PDES sharding, fast path.
    pub exec: ExecConfig,
}

impl MpiJob {
    /// Job with an implementation's default (untuned) behaviour.
    pub fn new(net: Network, placement: Vec<NodeId>, impl_id: MpiImpl) -> MpiJob {
        MpiJob {
            net,
            placement,
            profile: impl_id.profile(),
            tuning: Tuning::none(),
            tracing: false,
            obs: Obs::none(),
            deadline: None,
            faults: None,
            exec: ExecConfig::new(),
        }
    }

    /// Replace the whole execution configuration (engine, PDES shards,
    /// fast path, communication pattern).
    pub fn with_exec(mut self, exec: ExecConfig) -> MpiJob {
        self.exec = exec;
        self
    }

    /// Select the rank execution engine explicitly (tests comparing the
    /// two engines use this; everyone else keeps the default).
    pub fn with_engine(mut self, engine: Engine) -> MpiJob {
        self.exec.engine = Some(engine);
        self
    }

    /// Apply tuning overrides.
    pub fn with_tuning(mut self, tuning: Tuning) -> MpiJob {
        self.tuning = tuning;
        self
    }

    /// Replace the whole profile (custom models).
    pub fn with_profile(mut self, profile: ImplProfile) -> MpiJob {
        self.profile = profile;
        self
    }

    /// Enable per-operation tracing (see [`crate::trace`]).
    pub fn with_tracing(mut self) -> MpiJob {
        self.tracing = true;
        self
    }

    /// Configure observability once: MPI spans and phase markers from
    /// every rank, flow/TCP/link probes from the network, the kernel's
    /// run statistics, and (when the profiler is set) host wall-clock
    /// attribution all follow this config. Probes are read-only; virtual
    /// timestamps are unaffected (the observer-effect test suites enforce
    /// this). Fields left `None` keep the corresponding output off.
    pub fn with_obs(mut self, obs: Obs) -> MpiJob {
        if let Some(rec) = obs.recorder {
            self.obs.recorder = Some(rec);
        }
        if let Some(prof) = obs.profiler {
            self.obs.profiler = Some(prof);
        }
        self
    }

    /// Attach an observability recorder.
    #[deprecated(note = "configure observability once via `MpiJob::with_obs`")]
    pub fn with_recorder(self, rec: Arc<dyn Recorder>) -> MpiJob {
        self.with_obs(Obs::none().recorder(rec))
    }

    /// Attach a host-time self-profiler.
    #[deprecated(note = "configure observability once via `MpiJob::with_obs`")]
    pub fn with_host_profiler(self, prof: Arc<desim::obs::HostProfiler>) -> MpiJob {
        self.with_obs(Obs::none().profiler(prof))
    }

    /// Abort the run if it exceeds `limit` of virtual time.
    pub fn with_deadline(mut self, limit: SimTime) -> MpiJob {
        self.deadline = Some(limit);
        self
    }

    /// Inject faults from `plan`: per-channel segment loss/duplication is
    /// installed on the network, and a bootstrap process schedules the
    /// plan's timed events (link flaps and NIC stalls on the network, rank
    /// kills/restarts on the MPI world). An empty plan is ignored
    /// entirely, keeping the run on the fault-free fast path.
    pub fn with_faults(mut self, plan: FaultPlan) -> MpiJob {
        self.faults = (!plan.is_empty()).then_some(plan);
        self
    }

    /// Run `program` on every rank to completion.
    pub fn run(self, program: impl MpiProgram) -> Result<RunReport, SimError> {
        self.run_with_setup(|_| {}, program)
    }

    /// Like [`MpiJob::run`], with a hook that can spawn auxiliary
    /// simulation processes (e.g. background traffic generators) before
    /// the ranks start. Under PDES the hook runs on group 0's kernel,
    /// which also keeps the caller's original network handle.
    pub fn run_with_setup(
        self,
        setup: impl FnOnce(&Sim),
        program: impl MpiProgram,
    ) -> Result<RunReport, SimError> {
        match self.exec.shards {
            None => self.run_classic(setup, program),
            Some(n) => self.run_pdes(n.max(1) as usize, setup, program),
        }
    }

    /// Pre-interned job-phase keys: setup (world/rank construction),
    /// run (the whole kernel drive), collect (report assembly).
    #[allow(clippy::type_complexity)]
    fn prof_keys(
        &self,
    ) -> Option<(
        Arc<desim::obs::HostProfiler>,
        desim::obs::ProfKey,
        desim::obs::ProfKey,
        desim::obs::ProfKey,
    )> {
        self.obs.profiler.clone().map(|p| {
            let setup = p.intern("mpisim;job;setup");
            let run = p.intern("mpisim;job;run");
            let collect = p.intern("mpisim;job;collect");
            (p, setup, run, collect)
        })
    }

    /// Spawn one rank onto `sim` under `engine`, returning the completion
    /// that yields its finish time.
    fn spawn_rank(
        sim: &Sim,
        engine: Engine,
        rank: usize,
        world: &Arc<WorldInner>,
        program: &Arc<impl MpiProgram>,
    ) -> desim::Completion<SimTime> {
        let world = Arc::clone(world);
        let program = Arc::clone(program);
        let (tx, rx) = desim::completion::<SimTime>();
        match engine {
            Engine::Pooled => {
                sim.spawn_task(format!("rank{rank}"), move |cx| async move {
                    let sched = cx.sched();
                    let ctx = RankCtx::new(rank, cx, world);
                    program.run(ctx).await;
                    tx.fire_from(&sched, sched.now());
                });
            }
            Engine::Threaded => {
                sim.spawn(format!("rank{rank}"), move |p| {
                    let cx = Cx::from_proc(p);
                    let sched = cx.sched();
                    let ctx = RankCtx::new(rank, cx, world);
                    // A thread-backed rank blocks inside poll, so the
                    // whole program future resolves in one call.
                    desim::run_sync(program.run(ctx));
                    tx.fire_from(&sched, sched.now());
                });
            }
        }
        rx
    }

    /// The classic single-kernel driver (`exec.shards: None`).
    fn run_classic(
        self,
        setup: impl FnOnce(&Sim),
        program: impl MpiProgram,
    ) -> Result<RunReport, SimError> {
        let n = self.placement.len();
        assert!(n > 0, "MPI job needs at least one rank");
        let engine = self.exec.resolved_engine();
        let prof = self.prof_keys();
        let t_setup = prof.as_ref().map(|_| std::time::Instant::now());
        if let Some(on) = self.exec.fast_path {
            self.net.set_bulk_fast_path(on);
        }
        self.net.attach_obs(&self.obs);
        if let Some(plan) = &self.faults {
            self.net.install_faults(plan);
        }
        let world = WorldInner::new(
            self.net,
            self.placement,
            self.profile,
            self.tuning,
            self.exec.coll,
            self.tracing,
            self.obs.recorder.clone(),
        );
        let program = Arc::new(program);
        let deadline = self.deadline;
        let sim = Sim::new();
        sim.attach_obs(&self.obs);
        setup(&sim);
        if let Some(plan) = self.faults {
            let world = Arc::clone(&world);
            sim.spawn("faultd", move |p| {
                let s = p.sched();
                world.net.schedule_fault_events(&s, &plan);
                for ev in plan.sorted_events() {
                    if let FaultKind::RankFail {
                        rank,
                        restart_after,
                    } = ev.kind
                    {
                        let w = Arc::clone(&world);
                        s.call_at(ev.at, move |s2| {
                            let until = restart_after.map(|d| s2.now() + d);
                            w.fail_rank(s2, rank as usize, until);
                        });
                    }
                }
                // The bootstrap exits immediately; its scheduled callbacks
                // do not keep the simulation alive, so faults trailing the
                // workload are inert.
            });
        }
        let finish_times: Vec<_> = (0..n)
            .map(|rank| Self::spawn_rank(&sim, engine, rank, &world, &program))
            .collect();
        let t_run = prof.as_ref().map(|(p, setup, ..)| {
            let t0 = t_setup.expect("setup timer exists with profiler");
            p.add_ns(*setup, t0.elapsed().as_nanos() as u64);
            std::time::Instant::now()
        });
        let end = match deadline {
            Some(limit) => sim.run_until(limit)?,
            None => sim.run()?,
        };
        let t_collect = prof.as_ref().map(|(p, _, run, _)| {
            let t0 = t_run.expect("run timer exists with profiler");
            p.add_ns(*run, t0.elapsed().as_nanos() as u64);
            std::time::Instant::now()
        });
        let per_rank: Vec<SimDuration> = finish_times
            .into_iter()
            .map(|rx| {
                rx.try_take()
                    .ok()
                    .expect("rank finished")
                    .since(SimTime::ZERO)
            })
            .collect();
        let stats = world.stats.lock().clone();
        let records = world.records.lock().clone();
        let trace = world
            .trace
            .as_ref()
            .map(|t| {
                let mut v = t.lock().clone();
                v.sort_by_key(|e| (e.start_ns, e.rank));
                v
            })
            .unwrap_or_default();
        let report = RunReport {
            elapsed: end.since(SimTime::ZERO),
            per_rank,
            stats,
            records,
            trace,
            clean: world.quiescent(),
        };
        if let Some((p, _, _, collect)) = &prof {
            let t0 = t_collect.expect("collect timer exists with profiler");
            p.add_ns(*collect, t0.elapsed().as_nanos() as u64);
        }
        Ok(report)
    }

    /// The sharded conservative-PDES driver (`exec.shards: Some(n)`).
    ///
    /// The logical partition depends only on `(topology, placement,
    /// pattern)`; `workers` sets the thread count, so every virtual
    /// timestamp, record, and merged observability event is bit-identical
    /// for any `workers ≥ 1`.
    fn run_pdes(
        self,
        workers: usize,
        setup: impl FnOnce(&Sim),
        program: impl MpiProgram,
    ) -> Result<RunReport, SimError> {
        let n = self.placement.len();
        assert!(n > 0, "MPI job needs at least one rank");
        let engine = self.exec.resolved_engine();
        let prof = self.prof_keys();
        let t_setup = prof.as_ref().map(|_| std::time::Instant::now());
        let groups = exec::partition(&self.net, &self.placement, self.exec.pattern);
        let n_groups = groups.iter().copied().max().unwrap_or(0) + 1;
        let lookahead = exec::lookahead(&self.net, &self.placement, &groups)
            .unwrap_or(SimDuration::from_nanos(1));
        // Per-group networks: group 0 keeps the caller's handle (setup
        // hooks and background traffic land there); further groups get
        // their own flow engine over a clone of the same topology.
        let mut nets = vec![self.net.clone()];
        let stack = self.net.stack_overhead();
        for _ in 1..n_groups {
            let topo = self.net.with_topology(|t| t.clone());
            nets.push(Network::with_stack_overhead(topo, stack));
        }
        for net in &nets {
            if let Some(on) = self.exec.fast_path {
                net.set_bulk_fast_path(on);
            }
            if let Some(plan) = &self.faults {
                net.install_faults(plan);
            }
        }
        // Per-group observability buffers, merged deterministically by
        // (time, group, sequence) after the run.
        let buffers: Option<Vec<Arc<GroupBuffer>>> = self.obs.recorder.as_ref().map(|_| {
            (0..n_groups)
                .map(|_| Arc::new(GroupBuffer::new()))
                .collect()
        });
        let group_obs = |g: usize| {
            let mut o = Obs::none();
            if let Some(bufs) = &buffers {
                o = o.recorder(Arc::clone(&bufs[g]) as Arc<dyn Recorder>);
            }
            if let Some(p) = &self.obs.profiler {
                o = o.profiler(Arc::clone(p));
            }
            o
        };
        let sims: Vec<Sim> = (0..n_groups)
            .map(|g| {
                let sim = Sim::new();
                sim.attach_obs(&group_obs(g));
                sim
            })
            .collect();
        for (g, net) in nets.iter().enumerate() {
            net.attach_obs(&group_obs(g));
        }
        let mut sharded = ShardedSim::new(sims, lookahead, workers);
        if let Some(limit) = self.deadline {
            sharded.set_limit(limit);
        }
        let obs_groups: Vec<Option<Arc<dyn Recorder>>> = (0..n_groups)
            .map(|g| {
                buffers
                    .as_ref()
                    .map(|b| Arc::clone(&b[g]) as Arc<dyn Recorder>)
            })
            .collect();
        let world = WorldInner::new_grouped(
            nets,
            groups.clone(),
            self.placement,
            self.profile,
            self.tuning,
            self.exec.coll,
            self.tracing,
            obs_groups,
            Some(sharded.cross()),
        );
        let program = Arc::new(program);
        setup(&sharded.sims()[0]);
        if let Some(plan) = &self.faults {
            // Every group runs its own faultd: network events apply to
            // the group's own flow engine; a rank kill runs in full in
            // the dead rank's group and as a local abort everywhere else
            // (see WorldInner::fail_rank_lite).
            for g in 0..n_groups {
                let world = Arc::clone(&world);
                let plan = plan.clone();
                sharded.sims()[g].spawn(format!("faultd{g}"), move |p| {
                    let s = p.sched();
                    world.net_of_group(g).schedule_fault_events(&s, &plan);
                    for ev in plan.sorted_events() {
                        if let FaultKind::RankFail {
                            rank,
                            restart_after,
                        } = ev.kind
                        {
                            let w = Arc::clone(&world);
                            s.call_at(ev.at, move |s2| {
                                let until = restart_after.map(|d| s2.now() + d);
                                let rank = rank as usize;
                                if w.group_of(rank) == g {
                                    w.fail_rank(s2, rank, until);
                                } else {
                                    w.fail_rank_lite(s2, g, rank, until);
                                }
                            });
                        }
                    }
                });
            }
        }
        let finish_times: Vec<_> = (0..n)
            .map(|rank| {
                Self::spawn_rank(
                    &sharded.sims()[groups[rank]],
                    engine,
                    rank,
                    &world,
                    &program,
                )
            })
            .collect();
        let t_run = prof.as_ref().map(|(p, setup, ..)| {
            let t0 = t_setup.expect("setup timer exists with profiler");
            p.add_ns(*setup, t0.elapsed().as_nanos() as u64);
            std::time::Instant::now()
        });
        let shard_stats = sharded.run()?;
        let t_collect = prof.as_ref().map(|(p, _, run, _)| {
            let t0 = t_run.expect("run timer exists with profiler");
            p.add_ns(*run, t0.elapsed().as_nanos() as u64);
            std::time::Instant::now()
        });
        let per_rank: Vec<SimDuration> = finish_times
            .into_iter()
            .map(|rx| {
                rx.try_take()
                    .ok()
                    .expect("rank finished")
                    .since(SimTime::ZERO)
            })
            .collect();
        // The windowed driver keeps draining trailing kernel callbacks
        // after the last rank exits (a shard is only Done on an empty
        // heap), so "job elapsed" is the last rank's finish — the same
        // quantity the classic driver's final event time measures.
        let elapsed = per_rank.iter().copied().max().unwrap_or(SimDuration::ZERO);
        if let (Some(bufs), Some(rec)) = (&buffers, &self.obs.recorder) {
            for (g, b) in bufs.iter().enumerate() {
                // Stamped with the job's elapsed rather than the group's
                // own final clock: a group clock can overrun the last
                // rank's finish by however much of the final window the
                // trailing flow callbacks consumed, which depends on the
                // per-round-vs-fast-path execution shape. The job elapsed
                // is pure physics — identical for any worker count and
                // either fast-path mode — so the merged stream's digest
                // stays invariant across all of them. (`events` is
                // excluded from digests, like the classic KernelRun's.)
                b.push(desim::obs::Event::KernelRun {
                    end_ns: elapsed.as_nanos(),
                    events: shard_stats.groups[g].events,
                });
            }
            merge_events(bufs.iter().map(|b| b.take()).collect(), rec.as_ref());
        }
        let stats = world.stats.lock().clone();
        // Concurrent groups interleave pushes arbitrarily; a stable sort
        // by rank restores a worker-count-independent order (each rank's
        // own pushes are already serial).
        let mut records = world.records.lock().clone();
        records.sort_by_key(|r| r.0);
        let trace = world
            .trace
            .as_ref()
            .map(|t| {
                let mut v = t.lock().clone();
                v.sort_by_key(|e| (e.start_ns, e.rank));
                v
            })
            .unwrap_or_default();
        let report = RunReport {
            elapsed,
            per_rank,
            stats,
            records,
            trace,
            clean: world.quiescent(),
        };
        if let Some((p, _, _, collect)) = &prof {
            let t0 = t_collect.expect("collect timer exists with profiler");
            p.add_ns(*collect, t0.elapsed().as_nanos() as u64);
        }
        Ok(report)
    }
}

/// Everything measured during one MPI run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Wall-clock (virtual) time from t = 0 to the last rank's exit.
    pub elapsed: SimDuration,
    /// Per-rank finish times.
    pub per_rank: Vec<SimDuration>,
    /// Communication statistics.
    pub stats: CommStats,
    /// Named measurements emitted by ranks via [`RankCtx::record`].
    pub records: Vec<(usize, String, f64)>,
    /// Traced spans (empty unless [`MpiJob::with_tracing`] was used).
    pub trace: Vec<crate::trace::TraceEvent>,
    /// True if no posted receives or unexpected messages were left behind
    /// (a well-formed program drains everything).
    pub clean: bool,
}

impl RunReport {
    /// All recorded values with the given key, in rank order.
    pub fn values(&self, key: &str) -> Vec<(usize, f64)> {
        self.records
            .iter()
            .filter(|(_, k, _)| k == key)
            .map(|(r, _, v)| (*r, *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_resolve_accepts_known_values() {
        assert_eq!(Engine::resolve(None), (Engine::Pooled, None));
        assert_eq!(Engine::resolve(Some("pooled")), (Engine::Pooled, None));
        assert_eq!(Engine::resolve(Some("threaded")), (Engine::Threaded, None));
    }

    #[test]
    fn engine_resolve_warns_on_unknown_values() {
        for bad in ["threded", "POOLED", "", "1"] {
            let (engine, warning) = Engine::resolve(Some(bad));
            assert_eq!(engine, Engine::Pooled, "unknown values fall back");
            let msg = warning.expect("unknown value must warn");
            assert!(
                msg.contains(bad) || bad.is_empty(),
                "names the offender: {msg}"
            );
            assert!(
                msg.contains("\"threaded\"") && msg.contains("\"pooled\""),
                "names the accepted values: {msg}"
            );
        }
    }
}
