//! The `mpirun` analogue: place ranks on nodes, apply a profile and
//! tuning, execute an SPMD program, and collect the run report.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;

use desim::fault::{FaultKind, FaultPlan};
use desim::{Cx, Sim, SimDuration, SimError, SimTime};

use netsim::{Network, NodeId};

use crate::profile::{ImplProfile, MpiImpl, Tuning};
use crate::rank::RankCtx;
use crate::stats::CommStats;
use crate::world::WorldInner;

/// How simulated ranks execute.
///
/// Both engines drive the same rank programs through the same event queue
/// and produce bit-identical event streams and virtual times (the golden
/// digest suite pins this); they differ only in host-side mechanics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// One parked OS thread per rank; every blocking MPI call costs two
    /// context switches. Kept as the determinism oracle while the pooled
    /// engine is new; caps worlds at a few thousand ranks.
    Threaded,
    /// Ranks are stackless continuations multiplexed onto the kernel's
    /// dispatch loop: no thread per rank, no context switch per call.
    /// Scales to tens of thousands of ranks in one process. The default.
    Pooled,
}

impl Engine {
    /// The default engine, honouring the `MPISIM_ENGINE` environment
    /// variable (`threaded` or `pooled`; anything else — including unset —
    /// means pooled).
    pub fn from_env() -> Engine {
        match std::env::var("MPISIM_ENGINE").as_deref() {
            Ok("threaded") => Engine::Threaded,
            _ => Engine::Pooled,
        }
    }
}

/// An MPI program: SPMD body run by every rank. Implemented automatically
/// for async closures taking the rank's [`RankCtx`] by value:
///
/// ```ignore
/// job.run(|mut ctx: RankCtx| async move {
///     ctx.barrier().await;
/// })
/// ```
pub trait MpiProgram: Send + Sync + 'static {
    /// The per-rank body, as a boxed future (the engine decides how to
    /// drive it).
    fn run(&self, ctx: RankCtx) -> Pin<Box<dyn Future<Output = ()> + Send + 'static>>;
}

impl<F, Fut> MpiProgram for F
where
    F: Fn(RankCtx) -> Fut + Send + Sync + 'static,
    Fut: Future<Output = ()> + Send + 'static,
{
    fn run(&self, ctx: RankCtx) -> Pin<Box<dyn Future<Output = ()> + Send + 'static>> {
        Box::pin(self(ctx))
    }
}

/// A configured MPI job, ready to [`MpiJob::run`].
pub struct MpiJob {
    /// The network the job runs on.
    pub net: Network,
    /// Rank → node placement.
    pub placement: Vec<NodeId>,
    /// Implementation profile.
    pub profile: ImplProfile,
    /// Tuning overrides (§4.2).
    pub tuning: Tuning,
    /// Record per-operation trace spans into the run report.
    pub tracing: bool,
    /// Observability recorder, attached to the network, the kernel, and
    /// every rank for the duration of the run.
    pub recorder: Option<Arc<dyn desim::obs::Recorder>>,
    /// Abort the run (with [`SimError::TimeLimitExceeded`]) if virtual time
    /// passes this limit — the `mpirun` timeout the paper hit with
    /// MPICH-Madeleine on BT/SP ("the application timeout", §4.3).
    pub deadline: Option<SimTime>,
    /// Deterministic fault plan: stochastic segment loss/duplication plus
    /// timed link flaps, NIC stalls, and rank kills. `None` (and the empty
    /// plan) leave every run bit-identical to a fault-free one.
    pub faults: Option<FaultPlan>,
    /// Rank execution engine (defaults to [`Engine::from_env`]).
    pub engine: Engine,
    /// Host-time self-profiler, attached to the kernel's dispatch loop
    /// and the network's flow engine for the duration of the run.
    pub host_profiler: Option<Arc<desim::obs::HostProfiler>>,
}

impl MpiJob {
    /// Job with an implementation's default (untuned) behaviour.
    pub fn new(net: Network, placement: Vec<NodeId>, impl_id: MpiImpl) -> MpiJob {
        MpiJob {
            net,
            placement,
            profile: impl_id.profile(),
            tuning: Tuning::none(),
            tracing: false,
            recorder: None,
            deadline: None,
            faults: None,
            engine: Engine::from_env(),
            host_profiler: None,
        }
    }

    /// Select the rank execution engine explicitly (tests comparing the
    /// two engines use this; everyone else keeps the default).
    pub fn with_engine(mut self, engine: Engine) -> MpiJob {
        self.engine = engine;
        self
    }

    /// Apply tuning overrides.
    pub fn with_tuning(mut self, tuning: Tuning) -> MpiJob {
        self.tuning = tuning;
        self
    }

    /// Replace the whole profile (custom models).
    pub fn with_profile(mut self, profile: ImplProfile) -> MpiJob {
        self.profile = profile;
        self
    }

    /// Enable per-operation tracing (see [`crate::trace`]).
    pub fn with_tracing(mut self) -> MpiJob {
        self.tracing = true;
        self
    }

    /// Attach an observability recorder for the whole run: MPI spans and
    /// phase markers from every rank, flow/TCP/link probes from the
    /// network, and the kernel's run statistics all land in `rec`.
    /// Probes are read-only; virtual timestamps are unaffected (the
    /// observer-effect test suite enforces this).
    pub fn with_recorder(mut self, rec: Arc<dyn desim::obs::Recorder>) -> MpiJob {
        self.recorder = Some(rec);
        self
    }

    /// Attach a host-time self-profiler: the desim dispatch loop, the
    /// netsim flow engine, and the job's own setup/run/collect phases
    /// attribute their wall-clock time to it. Purely host-side — virtual
    /// time and digests are bit-identical with or without it (the
    /// profiling observer-effect suite enforces this).
    pub fn with_host_profiler(mut self, prof: Arc<desim::obs::HostProfiler>) -> MpiJob {
        self.host_profiler = Some(prof);
        self
    }

    /// Abort the run if it exceeds `limit` of virtual time.
    pub fn with_deadline(mut self, limit: SimTime) -> MpiJob {
        self.deadline = Some(limit);
        self
    }

    /// Inject faults from `plan`: per-channel segment loss/duplication is
    /// installed on the network, and a bootstrap process schedules the
    /// plan's timed events (link flaps and NIC stalls on the network, rank
    /// kills/restarts on the MPI world). An empty plan is ignored
    /// entirely, keeping the run on the fault-free fast path.
    pub fn with_faults(mut self, plan: FaultPlan) -> MpiJob {
        self.faults = (!plan.is_empty()).then_some(plan);
        self
    }

    /// Run `program` on every rank to completion.
    pub fn run(self, program: impl MpiProgram) -> Result<RunReport, SimError> {
        self.run_with_setup(|_| {}, program)
    }

    /// Like [`MpiJob::run`], with a hook that can spawn auxiliary
    /// simulation processes (e.g. background traffic generators) before
    /// the ranks start.
    pub fn run_with_setup(
        self,
        setup: impl FnOnce(&Sim),
        program: impl MpiProgram,
    ) -> Result<RunReport, SimError> {
        let n = self.placement.len();
        assert!(n > 0, "MPI job needs at least one rank");
        // Pre-interned job-phase keys: setup (world/rank construction),
        // run (the whole kernel drive), collect (report assembly).
        let prof = self.host_profiler.clone().map(|p| {
            let setup = p.intern("mpisim;job;setup");
            let run = p.intern("mpisim;job;run");
            let collect = p.intern("mpisim;job;collect");
            (p, setup, run, collect)
        });
        let t_setup = prof.as_ref().map(|_| std::time::Instant::now());
        if let Some(rec) = &self.recorder {
            self.net.attach_recorder(Arc::clone(rec));
        }
        if let Some((p, ..)) = &prof {
            self.net.attach_host_profiler(Arc::clone(p));
        }
        if let Some(plan) = &self.faults {
            self.net.install_faults(plan);
        }
        let world = WorldInner::new(
            self.net,
            self.placement,
            self.profile,
            self.tuning,
            self.tracing,
            self.recorder.clone(),
        );
        let program = Arc::new(program);
        let deadline = self.deadline;
        let sim = Sim::new();
        if let Some(rec) = &self.recorder {
            sim.attach_recorder(Arc::clone(rec));
        }
        if let Some((p, ..)) = &prof {
            sim.attach_profiler(Arc::clone(p));
        }
        setup(&sim);
        if let Some(plan) = self.faults {
            let world = Arc::clone(&world);
            sim.spawn("faultd", move |p| {
                let s = p.sched();
                world.net.schedule_fault_events(&s, &plan);
                for ev in plan.sorted_events() {
                    if let FaultKind::RankFail {
                        rank,
                        restart_after,
                    } = ev.kind
                    {
                        let w = Arc::clone(&world);
                        s.call_at(ev.at, move |s2| {
                            let until = restart_after.map(|d| s2.now() + d);
                            w.fail_rank(s2, rank as usize, until);
                        });
                    }
                }
                // The bootstrap exits immediately; its scheduled callbacks
                // do not keep the simulation alive, so faults trailing the
                // workload are inert.
            });
        }
        let engine = self.engine;
        let mut finish_times = Vec::new();
        for rank in 0..n {
            let world = Arc::clone(&world);
            let program = Arc::clone(&program);
            let (tx, rx) = desim::completion::<SimTime>();
            finish_times.push(rx);
            match engine {
                Engine::Pooled => {
                    sim.spawn_task(format!("rank{rank}"), move |cx| async move {
                        let sched = cx.sched();
                        let ctx = RankCtx::new(rank, cx, world);
                        program.run(ctx).await;
                        tx.fire_from(&sched, sched.now());
                    });
                }
                Engine::Threaded => {
                    sim.spawn(format!("rank{rank}"), move |p| {
                        let cx = Cx::from_proc(p);
                        let sched = cx.sched();
                        let ctx = RankCtx::new(rank, cx, world);
                        // A thread-backed rank blocks inside poll, so the
                        // whole program future resolves in one call.
                        desim::run_sync(program.run(ctx));
                        tx.fire_from(&sched, sched.now());
                    });
                }
            }
        }
        let t_run = prof.as_ref().map(|(p, setup, ..)| {
            let t0 = t_setup.expect("setup timer exists with profiler");
            p.add_ns(*setup, t0.elapsed().as_nanos() as u64);
            std::time::Instant::now()
        });
        let end = match deadline {
            Some(limit) => sim.run_until(limit)?,
            None => sim.run()?,
        };
        let t_collect = prof.as_ref().map(|(p, _, run, _)| {
            let t0 = t_run.expect("run timer exists with profiler");
            p.add_ns(*run, t0.elapsed().as_nanos() as u64);
            std::time::Instant::now()
        });
        let per_rank: Vec<SimDuration> = finish_times
            .into_iter()
            .map(|rx| {
                rx.try_take()
                    .ok()
                    .expect("rank finished")
                    .since(SimTime::ZERO)
            })
            .collect();
        let stats = world.stats.lock().clone();
        let records = world.records.lock().clone();
        let trace = world
            .trace
            .as_ref()
            .map(|t| {
                let mut v = t.lock().clone();
                v.sort_by_key(|e| (e.start_ns, e.rank));
                v
            })
            .unwrap_or_default();
        let report = RunReport {
            elapsed: end.since(SimTime::ZERO),
            per_rank,
            stats,
            records,
            trace,
            clean: world.quiescent(),
        };
        if let Some((p, _, _, collect)) = &prof {
            let t0 = t_collect.expect("collect timer exists with profiler");
            p.add_ns(*collect, t0.elapsed().as_nanos() as u64);
        }
        Ok(report)
    }
}

/// Everything measured during one MPI run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Wall-clock (virtual) time from t = 0 to the last rank's exit.
    pub elapsed: SimDuration,
    /// Per-rank finish times.
    pub per_rank: Vec<SimDuration>,
    /// Communication statistics.
    pub stats: CommStats,
    /// Named measurements emitted by ranks via [`RankCtx::record`].
    pub records: Vec<(usize, String, f64)>,
    /// Traced spans (empty unless [`MpiJob::with_tracing`] was used).
    pub trace: Vec<crate::trace::TraceEvent>,
    /// True if no posted receives or unexpected messages were left behind
    /// (a well-formed program drains everything).
    pub clean: bool,
}

impl RunReport {
    /// All recorded values with the given key, in rank order.
    pub fn values(&self, key: &str) -> Vec<(usize, f64)> {
        self.records
            .iter()
            .filter(|(_, k, _)| k == key)
            .map(|(r, _, v)| (*r, *v))
            .collect()
    }
}
