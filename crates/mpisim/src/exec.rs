//! Typed execution configuration: which engine drives the ranks, whether
//! the run is sharded over a conservative-PDES driver, and how the world
//! may be partitioned.
//!
//! `ExecConfig` is the single front door for knobs that used to be spread
//! over builder methods and ad-hoc environment-variable reads. Environment
//! variables (`MPISIM_ENGINE`, `NETSIM_NO_FAST_PATH`) remain *fallback*
//! overrides only: an explicit `ExecConfig` field always wins.

use desim::SimDuration;
use netsim::{Network, NodeId, SiteId};

use crate::collectives::CollConfig;
use crate::launcher::Engine;

/// How the job's communication may be partitioned across PDES shards.
///
/// The partition is a pure function of `(topology, placement, pattern)` —
/// deliberately independent of the shard (worker) count, so the observed
/// event stream and digests are bit-identical for any `shards` value.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CommPattern {
    /// No structural guarantee: any rank may talk to any rank, collectives
    /// included. The whole world forms one logical group; `shards > 1`
    /// buys no parallelism but stays correct. The safe default.
    #[default]
    General,
    /// The program promises site-disjoint link usage: every *directed*
    /// network link carries flows of at most one site's group (intra-site
    /// traffic plus cross-site flows whose channels the group owns). One
    /// logical group per rank-bearing site. The world audits the promise
    /// at channel creation and panics on a violation — a wrong pattern is
    /// a bug, not a slow path.
    SiteDisjoint,
}

/// Typed execution configuration for an [`crate::MpiJob`] (or a
/// `repro`-level scenario). `None` fields defer to the environment
/// fallback or the built-in default.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecConfig {
    /// Rank execution engine. `None`: [`Engine::from_env`] (the
    /// `MPISIM_ENGINE` fallback).
    pub engine: Option<Engine>,
    /// `Some(n)`: run on the sharded conservative-PDES driver with `n`
    /// worker threads (shard *count* is fixed by the partition; `n` only
    /// sets how many windows run concurrently). `None`: the classic
    /// single-queue kernel, byte-identical to the pre-PDES code path.
    pub shards: Option<u32>,
    /// Force the closed-form bulk-transfer fast path on or off. `None`:
    /// the network's default (`NETSIM_NO_FAST_PATH` fallback).
    pub fast_path: Option<bool>,
    /// Partition rule used when `shards` is set.
    pub pattern: CommPattern,
    /// Collective-algorithm selection table. The default (all
    /// `ProfileDefault`) keeps the implementation profile's own dispatch
    /// and leaves every existing digest bit-identical.
    pub coll: CollConfig,
}

impl ExecConfig {
    /// The all-default configuration: classic kernel, environment-driven
    /// engine and fast path.
    pub fn new() -> ExecConfig {
        ExecConfig::default()
    }

    /// Select the rank execution engine explicitly.
    pub fn engine(mut self, engine: Engine) -> ExecConfig {
        self.engine = Some(engine);
        self
    }

    /// Run on the PDES driver with `n` worker threads.
    pub fn shards(mut self, n: u32) -> ExecConfig {
        self.shards = Some(n);
        self
    }

    /// Force the bulk fast path on or off.
    pub fn fast_path(mut self, on: bool) -> ExecConfig {
        self.fast_path = Some(on);
        self
    }

    /// Set the partition rule.
    pub fn pattern(mut self, pattern: CommPattern) -> ExecConfig {
        self.pattern = pattern;
        self
    }

    /// Pin collective algorithms per (op × size class).
    pub fn coll(mut self, coll: CollConfig) -> ExecConfig {
        self.coll = coll;
        self
    }

    /// The engine to use, honouring the environment fallback.
    pub(crate) fn resolved_engine(&self) -> Engine {
        self.engine.unwrap_or_else(Engine::from_env)
    }
}

/// Rank → logical-group index for the given pattern. Group indices are
/// dense, in order of first appearance along the placement (matching
/// `WorldInner::site_groups`), so the partition is reproducible from the
/// placement alone.
pub(crate) fn partition(net: &Network, placement: &[NodeId], pattern: CommPattern) -> Vec<usize> {
    match pattern {
        CommPattern::General => vec![0; placement.len()],
        CommPattern::SiteDisjoint => {
            let mut sites: Vec<SiteId> = Vec::new();
            placement
                .iter()
                .map(|&node| {
                    let s = net.site_of(node);
                    match sites.iter().position(|&x| x == s) {
                        Some(i) => i,
                        None => {
                            sites.push(s);
                            sites.len() - 1
                        }
                    }
                })
                .collect()
        }
    }
}

/// Conservative lookahead for the partition: the minimum one-way latency
/// (`rtt / 2`) over all cross-group rank pairs. Any cross-group effect
/// posted at local time `t` lands at `≥ t + lookahead`, which is the
/// correctness condition of the windowed driver. `None` when the
/// partition has a single group (no cross-group pairs).
pub(crate) fn lookahead(
    net: &Network,
    placement: &[NodeId],
    groups: &[usize],
) -> Option<SimDuration> {
    let mut min: Option<SimDuration> = None;
    for (i, &a) in placement.iter().enumerate() {
        for (j, &b) in placement.iter().enumerate() {
            if groups[i] == groups[j] {
                continue;
            }
            let one_way = SimDuration::from_nanos(net.rtt(a, b).as_nanos() / 2);
            min = Some(match min {
                Some(m) => m.min(one_way),
                None => one_way,
            });
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{grid5000_pair, Network};

    #[test]
    fn general_is_one_group() {
        let (topo, a, b) = grid5000_pair(2);
        let net = Network::new(topo);
        let placement = vec![a[0], a[1], b[0], b[1]];
        assert_eq!(
            partition(&net, &placement, CommPattern::General),
            vec![0, 0, 0, 0]
        );
    }

    #[test]
    fn site_disjoint_groups_by_site_in_first_appearance_order() {
        let (topo, a, b) = grid5000_pair(2);
        let net = Network::new(topo);
        let placement = vec![b[0], a[0], b[1], a[1]];
        let groups = partition(&net, &placement, CommPattern::SiteDisjoint);
        assert_eq!(groups, vec![0, 1, 0, 1]);
    }

    #[test]
    fn lookahead_is_min_cross_group_one_way() {
        let (topo, a, b) = grid5000_pair(1);
        let net = Network::new(topo);
        let placement = vec![a[0], b[0]];
        let groups = partition(&net, &placement, CommPattern::SiteDisjoint);
        let la = lookahead(&net, &placement, &groups).expect("two groups");
        let rtt = net.rtt(a[0], b[0]);
        assert_eq!(la.as_nanos(), rtt.as_nanos() / 2);
        // Single group: no cross pairs, no lookahead.
        let one = partition(&net, &placement, CommPattern::General);
        assert!(lookahead(&net, &placement, &one).is_none());
    }
}
