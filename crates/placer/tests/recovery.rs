//! End-to-end placement recovery: profile a benchmark, scramble its
//! placement, and verify the optimizer restores near-optimal cost *and*
//! that the re-simulated run confirms the prediction.

use mpisim::{MpiImpl, MpiJob, Tuning};
use netsim::{grid5000_pair, KernelConfig, Network, NodeId};
use npb::{NasBenchmark, NasClass, NasRun};
use placer::{optimize_detailed, predict_cost, CommProfile};

fn profile_cg() -> CommProfile {
    let (mut topo, rn, _) = grid5000_pair(16);
    topo.set_kernel_all(KernelConfig::tuned(4 << 20));
    let run = NasRun::quick(NasBenchmark::Cg, NasClass::S);
    let report = MpiJob::new(Network::new(topo), rn, MpiImpl::GridMpi)
        .with_tuning(Tuning::paper_tuned(MpiImpl::GridMpi))
        .run(run.program())
        .unwrap();
    CommProfile::from_stats(16, &report.stats)
}

#[test]
fn optimizer_repairs_an_interleaved_cg_placement() {
    let profile = profile_cg();
    let (mut topo, rn, nn) = grid5000_pair(8);
    topo.set_kernel_all(KernelConfig::tuned_with_default(4 << 20, 4 << 20));
    let interleaved: Vec<NodeId> = rn
        .iter()
        .zip(nn.iter())
        .flat_map(|(&a, &b)| [a, b])
        .collect();
    let mut block = rn.clone();
    block.extend(nn.clone());

    let result = optimize_detailed(&topo, &interleaved, &profile);
    let block_cost = predict_cost(&topo, &block, &profile);
    assert!(
        result.cost < result.initial_cost * 0.75,
        "optimizer should cut the interleaved cost: {} -> {}",
        result.initial_cost,
        result.cost
    );
    assert!(
        result.cost <= block_cost * 1.01,
        "optimizer ({}) should match or beat the block default ({block_cost})",
        result.cost
    );

    // Verify with the simulator.
    let simulate = |placement: Vec<NodeId>| -> f64 {
        let run = NasRun::quick(NasBenchmark::Cg, NasClass::S);
        let report = MpiJob::new(Network::new(topo.clone()), placement, MpiImpl::GridMpi)
            .with_tuning(Tuning::paper_tuned(MpiImpl::GridMpi))
            .run(run.program())
            .unwrap();
        run.estimate(&report).as_secs_f64()
    };
    let t_bad = simulate(interleaved);
    let t_opt = simulate(result.placement);
    assert!(
        t_opt < t_bad * 0.95,
        "optimized placement must actually run faster: {t_bad}s -> {t_opt}s"
    );
}

#[test]
fn predictions_rank_placements_like_the_simulator() {
    // Ordering consistency: for CG, predicted cost and simulated time must
    // agree on which of (block, interleaved) is better.
    let profile = profile_cg();
    let (mut topo, rn, nn) = grid5000_pair(8);
    topo.set_kernel_all(KernelConfig::tuned_with_default(4 << 20, 4 << 20));
    let interleaved: Vec<NodeId> = rn
        .iter()
        .zip(nn.iter())
        .flat_map(|(&a, &b)| [a, b])
        .collect();
    let mut block = rn.clone();
    block.extend(nn.clone());
    let predicted_block = predict_cost(&topo, &block, &profile);
    let predicted_inter = predict_cost(&topo, &interleaved, &profile);
    assert!(predicted_block < predicted_inter);
}
