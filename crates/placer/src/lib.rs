#![warn(missing_docs)]

//! # placer — task placement from measured communication profiles
//!
//! The paper's introduction names task placement as an open problem for
//! grids ("it could be of interest to take this heterogeneity into account
//! in the task placement phase", §1), and MPICH-VMI's profile database was
//! built for exactly this (§2.1.6). This crate closes that loop for the
//! simulator:
//!
//! 1. run a workload once with instrumentation and extract its
//!    [`CommProfile`] (per-pair bytes and message counts, from
//!    `mpisim::CommStats`);
//! 2. predict the communication cost of any rank→node placement on a
//!    topology with a latency + bandwidth model ([`predict_cost`]);
//! 3. search placements with deterministic pairwise-swap hill climbing
//!    ([`optimize`]), and verify the win by re-simulating.
//!
//! ```
//! use mpisim::{MpiImpl, MpiJob, RankCtx};
//! use netsim::{grid5000_pair, Network};
//! use placer::{CommProfile, optimize, predict_cost};
//!
//! // Profile a ring exchange on a cluster...
//! let (topo, rennes, nancy) = grid5000_pair(2);
//! let report = MpiJob::new(Network::new(topo.clone()), rennes.clone(), MpiImpl::Mpich2)
//!     .run(|mut ctx: RankCtx| async move {
//!         let right = (ctx.rank() + 1) % ctx.size();
//!         let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
//!         ctx.sendrecv(right, 1 << 20, left, 0).await;
//!     })
//!     .unwrap();
//! let profile = CommProfile::from_stats(2, &report.stats);
//!
//! // ...then place it on the grid: both candidate assignments keep the
//! // ring's cost identical by symmetry, and the optimizer terminates.
//! let candidates = vec![rennes[0], nancy[0]];
//! let (placement, cost) = optimize(&topo, &candidates, &profile);
//! assert_eq!(placement.len(), 2);
//! assert!(cost > 0.0);
//! assert_eq!(cost, predict_cost(&topo, &placement, &profile));
//! ```

mod cost;
mod profile;
mod search;

pub use cost::predict_cost;
pub use profile::CommProfile;
pub use search::{optimize, optimize_detailed, optimize_master, PlacementResult};
