//! Deterministic placement search: greedy pairwise-swap hill climbing.

use netsim::{NodeId, Topology};

use crate::cost::predict_cost;
use crate::profile::CommProfile;

/// Outcome of a placement search.
#[derive(Clone, Debug)]
pub struct PlacementResult {
    /// Rank → node assignment.
    pub placement: Vec<NodeId>,
    /// Predicted cost of the assignment.
    pub cost: f64,
    /// Cost of the initial (identity) assignment, for comparison.
    pub initial_cost: f64,
    /// Hill-climbing swap steps taken.
    pub steps: usize,
}

/// Optimise the assignment of `profile.n` ranks onto the first
/// `profile.n` of `candidates` by pairwise-swap hill climbing (steepest
/// descent, deterministic tie-breaking). Returns the placement and its
/// predicted cost.
pub fn optimize(
    topo: &Topology,
    candidates: &[NodeId],
    profile: &CommProfile,
) -> (Vec<NodeId>, f64) {
    let r = optimize_detailed(topo, candidates, profile);
    (r.placement, r.cost)
}

/// Exact placement for the two-site case: enumerate every balanced
/// assignment of ranks to the two site pools (the per-pair cost only
/// depends on whether a pair is co-sited, so each candidate costs a
/// table lookup sum). Feasible up to ~20 ranks; returns `None` beyond
/// that or when the candidates span more or fewer than two sites.
fn optimize_two_sites_exact(
    topo: &Topology,
    candidates: &[NodeId],
    profile: &CommProfile,
) -> Option<(Vec<NodeId>, f64)> {
    let n = profile.n;
    if n > 20 || n == 0 {
        return None;
    }
    let pool = &candidates[..n];
    let mut sites: Vec<netsim::SiteId> = pool.iter().map(|&c| topo.site_of(c)).collect();
    sites.sort();
    sites.dedup();
    if sites.len() != 2 {
        return None;
    }
    let a_nodes: Vec<NodeId> = pool
        .iter()
        .copied()
        .filter(|&c| topo.site_of(c) == sites[0])
        .collect();
    let b_nodes: Vec<NodeId> = pool
        .iter()
        .copied()
        .filter(|&c| topo.site_of(c) == sites[1])
        .collect();
    // Representative same-site and cross-site routes (sites are uniform).
    let same_path = topo.route(a_nodes[0], *a_nodes.get(1).unwrap_or(&b_nodes[0]));
    let cross_path = topo.route(a_nodes[0], b_nodes[0]);
    let pair_cost = |src: usize, dst: usize, path: &netsim::Path| -> f64 {
        profile.msgs_between(src, dst) as f64 * path.rtt.as_secs_f64() / 2.0
            + profile.bytes_between(src, dst) as f64 / path.bottleneck
    };
    let mut w_same = vec![0.0f64; n * n];
    let mut w_cross = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                w_same[i * n + j] = pair_cost(i, j, &same_path);
                w_cross[i * n + j] = pair_cost(i, j, &cross_path);
            }
        }
    }
    let k = a_nodes.len();
    let mut best: Option<(u32, f64)> = None;
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize != k {
            continue;
        }
        let mut cost = 0.0;
        for i in 0..n {
            let si = mask >> i & 1;
            for j in 0..n {
                if i != j {
                    let w = if si == (mask >> j & 1) {
                        &w_same
                    } else {
                        &w_cross
                    };
                    cost += w[i * n + j];
                }
            }
        }
        if best.is_none_or(|(_, b)| cost < b) {
            best = Some((mask, cost));
        }
    }
    let (mask, _) = best?;
    let mut placement = vec![a_nodes[0]; n];
    let (mut ai, mut bi) = (0, 0);
    for (i, slot) in placement.iter_mut().enumerate() {
        if mask >> i & 1 == 1 {
            *slot = a_nodes[ai];
            ai += 1;
        } else {
            *slot = b_nodes[bi];
            bi += 1;
        }
    }
    let cost = predict_cost(topo, &placement, profile);
    Some((placement, cost))
}

/// [`optimize`] with full search diagnostics. The search runs a
/// Kernighan–Lin style pass first (swapping whole rank pairs across the
/// site cut — the move class pairwise hill climbing cannot see on
/// symmetric communication graphs), then polishes with steepest-descent
/// pairwise swaps.
pub fn optimize_detailed(
    topo: &Topology,
    candidates: &[NodeId],
    profile: &CommProfile,
) -> PlacementResult {
    assert!(
        candidates.len() >= profile.n,
        "need at least as many candidate nodes as ranks"
    );
    let mut placement: Vec<NodeId> = candidates[..profile.n].to_vec();
    let initial_cost = predict_cost(topo, &placement, profile);
    let mut cost = initial_cost;
    let mut steps = 0;
    // Two sites: solve the bipartition exactly.
    if let Some((exact, exact_cost)) = optimize_two_sites_exact(topo, candidates, profile) {
        if exact_cost + 1e-12 < cost {
            steps = exact.iter().zip(&placement).filter(|(a, b)| a != b).count();
            placement = exact;
            cost = exact_cost;
        }
        return PlacementResult {
            placement,
            cost,
            initial_cost,
            steps,
        };
    }
    // Kernighan–Lin pass: tentative best-gain swaps with locking, keeping
    // the best prefix of the swap sequence; repeated until a pass yields
    // no improvement.
    loop {
        let mut work = placement.clone();
        let mut locked = vec![false; work.len()];
        let mut seq: Vec<(usize, usize, f64)> = Vec::new();
        for _ in 0..work.len() / 2 {
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..work.len() {
                if locked[i] {
                    continue;
                }
                #[allow(clippy::needless_range_loop)] // j indexes two slices
                for j in i + 1..work.len() {
                    if locked[j] {
                        continue;
                    }
                    work.swap(i, j);
                    let c = predict_cost(topo, &work, profile);
                    work.swap(i, j);
                    if best.is_none_or(|(_, _, b)| c < b) {
                        best = Some((i, j, c));
                    }
                }
            }
            let Some((i, j, c)) = best else { break };
            work.swap(i, j);
            locked[i] = true;
            locked[j] = true;
            seq.push((i, j, c));
        }
        // Best prefix of the tentative sequence.
        let Some((best_k, &(_, _, best_c))) = seq
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .2.partial_cmp(&b.1 .2).expect("costs are finite"))
        else {
            break;
        };
        if best_c + 1e-12 < cost {
            for &(i, j, _) in &seq[..=best_k] {
                placement.swap(i, j);
                steps += 1;
            }
            cost = best_c;
        } else {
            break;
        }
    }
    // Greedy polish.
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..placement.len() {
            for j in i + 1..placement.len() {
                placement.swap(i, j);
                let c = predict_cost(topo, &placement, profile);
                placement.swap(i, j);
                if c + 1e-15 < best.map_or(cost, |(_, _, b)| b) {
                    best = Some((i, j, c));
                }
            }
        }
        match best {
            Some((i, j, c)) if c + 1e-15 < cost => {
                placement.swap(i, j);
                cost = c;
                steps += 1;
            }
            _ => break,
        }
    }
    PlacementResult {
        placement,
        cost,
        initial_cost,
        steps,
    }
}

/// Specialised search for master/worker applications: try each candidate
/// as rank 0 (the master), keeping the workers fixed. Returns the
/// per-candidate predicted costs (the §4.4 master-location question).
pub fn optimize_master(
    topo: &Topology,
    master_candidates: &[NodeId],
    workers: &[NodeId],
    profile: &CommProfile,
) -> Vec<(NodeId, f64)> {
    assert_eq!(
        workers.len() + 1,
        profile.n,
        "profile must cover master + workers"
    );
    master_candidates
        .iter()
        .map(|&m| {
            let mut placement = vec![m];
            placement.extend_from_slice(workers);
            (m, predict_cost(topo, &placement, profile))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;
    use mpisim::CommStats;
    use netsim::{NodeParams, SiteParams};

    /// Two sites, two nodes each. Ranks 0↔1 and 2↔3 chat heavily; the
    /// identity placement splits both pairs across the WAN, so the
    /// optimizer must regroup them.
    #[test]
    fn hill_climbing_regroups_chatty_pairs() {
        let mut t = Topology::new();
        let a = t.add_site("a", SiteParams::default());
        let b = t.add_site("b", SiteParams::default());
        let n0 = t.add_node(a, NodeParams::default());
        let n1 = t.add_node(b, NodeParams::default());
        let n2 = t.add_node(a, NodeParams::default());
        let n3 = t.add_node(b, NodeParams::default());
        t.connect_sites(
            a,
            b,
            SimDuration::from_micros(11_600),
            9.4e9 / 8.0,
            512 << 10,
        );

        let mut stats = CommStats::default();
        for _ in 0..100 {
            stats.record_pair(0, 1, 100_000);
            stats.record_pair(1, 0, 100_000);
            stats.record_pair(2, 3, 100_000);
            stats.record_pair(3, 2, 100_000);
        }
        let profile = CommProfile::from_stats(4, &stats);
        // Identity: rank0→site a, rank1→site b (WAN), rank2→a, rank3→b.
        let r = optimize_detailed(&t, &[n0, n1, n2, n3], &profile);
        // The serialisation term (40 MB over the NICs) is placement-
        // invariant; the latency term must vanish.
        assert!(r.cost < r.initial_cost / 5.0, "no regrouping: {r:?}");
        // Verify both chatty pairs are now co-sited.
        let site = |n: NodeId| t.site_of(n);
        assert_eq!(site(r.placement[0]), site(r.placement[1]));
        assert_eq!(site(r.placement[2]), site(r.placement[3]));
        assert!(r.steps >= 1);
    }

    #[test]
    fn already_optimal_placement_takes_no_steps() {
        let mut t = Topology::new();
        let a = t.add_site("a", SiteParams::default());
        let nodes = vec![
            t.add_node(a, NodeParams::default()),
            t.add_node(a, NodeParams::default()),
        ];
        let mut stats = CommStats::default();
        stats.record_pair(0, 1, 1000);
        let profile = CommProfile::from_stats(2, &stats);
        let r = optimize_detailed(&t, &nodes, &profile);
        assert_eq!(r.steps, 0);
        assert_eq!(r.cost, r.initial_cost);
    }
}
