//! Communication profiles extracted from instrumented runs.

use mpisim::CommStats;

/// A workload's communication demand: directed per-pair payload bytes and
/// message counts (the "communication patterns … stored in a database" of
/// MPICH-VMI, §2.1.6).
#[derive(Clone, Debug)]
pub struct CommProfile {
    /// Rank count.
    pub n: usize,
    /// `bytes[src * n + dst]`: payload bytes sent src → dst.
    pub bytes: Vec<u64>,
    /// `msgs[src * n + dst]`: messages sent src → dst.
    pub msgs: Vec<u64>,
}

impl CommProfile {
    /// Build a profile from a run's statistics.
    pub fn from_stats(n: usize, stats: &CommStats) -> CommProfile {
        let mut bytes = vec![0u64; n * n];
        let mut msgs = vec![0u64; n * n];
        for (&(s, d), &b) in &stats.pair_bytes {
            if s < n && d < n {
                bytes[s * n + d] += b;
            }
        }
        for (&(s, d), &m) in &stats.pair_msgs {
            if s < n && d < n {
                msgs[s * n + d] += m;
            }
        }
        CommProfile { n, bytes, msgs }
    }

    /// Bytes sent from `src` to `dst`.
    pub fn bytes_between(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.n + dst]
    }

    /// Messages sent from `src` to `dst`.
    pub fn msgs_between(&self, src: usize, dst: usize) -> u64 {
        self.msgs[src * self.n + dst]
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_stats_builds_the_matrix() {
        let mut stats = CommStats::default();
        stats.record_pair(0, 1, 100);
        stats.record_pair(0, 1, 50);
        stats.record_pair(2, 0, 7);
        let p = CommProfile::from_stats(3, &stats);
        assert_eq!(p.bytes_between(0, 1), 150);
        assert_eq!(p.msgs_between(0, 1), 2);
        assert_eq!(p.bytes_between(2, 0), 7);
        assert_eq!(p.bytes_between(1, 2), 0);
        assert_eq!(p.total_bytes(), 157);
    }

    #[test]
    fn out_of_range_pairs_are_ignored() {
        let mut stats = CommStats::default();
        stats.record_pair(5, 6, 1);
        let p = CommProfile::from_stats(2, &stats);
        assert_eq!(p.total_bytes(), 0);
    }
}
