//! The placement cost model: latency per message plus serialisation per
//! byte over the route each pair would use.

use netsim::{NodeId, Topology};

use crate::profile::CommProfile;

/// Predicted communication cost (seconds of aggregate transfer effort) of
/// running `profile` with rank `i` on `placement[i]`.
///
/// Each directed pair contributes `msgs × one_way_latency +
/// bytes / bottleneck_bandwidth`. The absolute number is not an execution
/// time (transfers overlap in a real run); it is a *ranking* function —
/// lower predicted cost means less WAN exposure, which is what placement
/// can influence.
pub fn predict_cost(topo: &Topology, placement: &[NodeId], profile: &CommProfile) -> f64 {
    assert_eq!(placement.len(), profile.n, "placement must cover all ranks");
    let mut cost = 0.0;
    for src in 0..profile.n {
        for dst in 0..profile.n {
            if src == dst {
                continue;
            }
            let msgs = profile.msgs_between(src, dst);
            let bytes = profile.bytes_between(src, dst);
            if msgs == 0 && bytes == 0 {
                continue;
            }
            let path = topo.route(placement[src], placement[dst]);
            cost += msgs as f64 * path.rtt.as_secs_f64() / 2.0 + bytes as f64 / path.bottleneck;
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;
    use mpisim::CommStats;
    use netsim::{NodeParams, SiteParams};

    fn grid() -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let a = t.add_site("a", SiteParams::default());
        let b = t.add_site("b", SiteParams::default());
        let nodes = vec![
            t.add_node(a, NodeParams::default()),
            t.add_node(a, NodeParams::default()),
            t.add_node(b, NodeParams::default()),
            t.add_node(b, NodeParams::default()),
        ];
        t.connect_sites(
            a,
            b,
            SimDuration::from_micros(11_600),
            9.4e9 / 8.0,
            512 << 10,
        );
        (t, nodes)
    }

    #[test]
    fn wan_pairs_cost_more_than_lan_pairs() {
        let (topo, nodes) = grid();
        let mut stats = CommStats::default();
        stats.record_pair(0, 1, 1000);
        let profile = CommProfile::from_stats(2, &stats);
        let lan = predict_cost(&topo, &[nodes[0], nodes[1]], &profile);
        let wan = predict_cost(&topo, &[nodes[0], nodes[2]], &profile);
        assert!(wan > 50.0 * lan, "wan={wan} lan={lan}");
    }

    #[test]
    fn cost_is_additive_over_pairs() {
        let (topo, nodes) = grid();
        let mut s1 = CommStats::default();
        s1.record_pair(0, 1, 500);
        let mut s2 = CommStats::default();
        s2.record_pair(1, 0, 700);
        let mut both = CommStats::default();
        both.record_pair(0, 1, 500);
        both.record_pair(1, 0, 700);
        let place = [nodes[0], nodes[2]];
        let c1 = predict_cost(&topo, &place, &CommProfile::from_stats(2, &s1));
        let c2 = predict_cost(&topo, &place, &CommProfile::from_stats(2, &s2));
        let c = predict_cost(&topo, &place, &CommProfile::from_stats(2, &both));
        assert!((c - (c1 + c2)).abs() < 1e-12);
    }
}
